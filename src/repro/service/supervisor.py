"""Process supervision: spawn, probe, kill -9, and collect the cluster.

The supervisor is deliberately synchronous — it manages operating-system
processes, not protocol state.  Every component runs as its own
``python -m repro serve --role <role> --index <i> --cluster <file>``
subprocess so that killing one (the arbiter, say, with ``SIGKILL``)
models a real crash: no shared interpreter, no in-process cleanup, just
a dead socket and whatever the victim had already flushed to disk.

Readiness and liveness probes speak one raw frame over a fresh blocking
socket (no asyncio here: probes must work from inside pytest, from the
CLI, and from the bench loop alike).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service.cluster import ClusterConfig

_LEN = struct.Struct(">I")


def sync_request(
    host: str, port: int, method: str, timeout: float = 2.0, **params: object
) -> dict:
    """One blocking request on a fresh socket (probe-grade, no retries)."""
    message = {"id": 1, "method": method}
    message.update(params)
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(_LEN.pack(len(payload)) + payload)
        header = _recv_exact(sock, _LEN.size)
        (length,) = _LEN.unpack(header)
        body = _recv_exact(sock, length)
    return json.loads(body.decode("utf-8"))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise ServiceError("peer closed mid-frame during probe")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class Supervisor:
    """Spawns and tracks one cluster's worth of service processes."""

    def __init__(self, config: ClusterConfig, fault_args: Optional[List[str]] = None):
        self.config = config
        self.fault_args = list(fault_args or [])
        self.procs: Dict[str, subprocess.Popen] = {}
        self._logs: List[object] = []
        self.config_path = config.save()

    # ------------------------------------------------------------------
    def _spawn(self, component: str, role: str, index: int,
               extra: Optional[List[str]] = None) -> None:
        log_path = os.path.join(self.config.service_dir, f"{component}.log")
        log = open(log_path, "a", encoding="utf-8")
        self._logs.append(log)
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--role", role, "--index", str(index),
            "--cluster", self.config_path,
        ] + (extra or [])
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.procs[component] = subprocess.Popen(
            argv, stdout=log, stderr=subprocess.STDOUT, env=env
        )

    def start(self) -> None:
        """Launch proxies (if configured), arbiters, then nodes."""
        if self.config.via_proxy:
            self._spawn("proxy", "proxy", 0, extra=self.fault_args)
        for i in range(len(self.config.arbiters)):
            self._spawn(f"arbiter-{i}", "arbiter", i)
        for i in range(len(self.config.nodes)):
            self._spawn(f"node{i}", "node", i)

    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 15.0) -> None:
        """Block until every server answers ping on its *real* port."""
        deadline = time.monotonic() + timeout  # detlint: ok[DET003] — OS process probe deadline
        targets: List[Tuple[str, str, int]] = []
        for i, endpoint in enumerate(self.config.nodes):
            targets.append((f"node{i}", endpoint.host, endpoint.port))
        for i, endpoint in enumerate(self.config.arbiters):
            targets.append((f"arbiter-{i}", endpoint.host, endpoint.port))
        pending = dict((name, (host, port)) for name, host, port in targets)
        while pending:
            for name in list(pending):
                host, port = pending[name]
                try:
                    response = sync_request(host, port, "ping", timeout=1.0)
                except (OSError, ServiceError):
                    continue
                if response.get("role"):
                    del pending[name]
            if not pending:
                break
            if time.monotonic() > deadline:  # detlint: ok[DET003] — OS process probe deadline
                raise ServiceError(
                    f"cluster not ready after {timeout}s; waiting on "
                    f"{sorted(pending)}"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def kill(self, component: str, sig: int = signal.SIGKILL) -> None:
        """Deliver a crash (default ``kill -9``) to one component."""
        proc = self.procs.get(component)
        if proc is None:
            raise ServiceError(f"unknown component {component!r}")
        proc.send_signal(sig)
        proc.wait(timeout=10)

    def alive(self, component: str) -> bool:
        proc = self.procs.get(component)
        return proc is not None and proc.poll() is None

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> Dict[str, int]:
        """Graceful stop: nodes first (they snapshot), then arbiters.

        Returns the exit code of every component that was still running.
        """
        order = (
            [f"node{i}" for i in range(len(self.config.nodes))]
            + [f"arbiter-{i}" for i in range(len(self.config.arbiters))]
        )
        for i, endpoint in enumerate(self.config.nodes):
            self._polite_stop(endpoint.host, endpoint.port)
        for i, endpoint in enumerate(self.config.arbiters):
            self._polite_stop(endpoint.host, endpoint.port)
        codes: Dict[str, int] = {}
        for component in order + ["proxy"]:
            proc = self.procs.get(component)
            if proc is None:
                continue
            if component == "proxy":
                proc.terminate()  # proxies have no shutdown protocol
            try:
                codes[component] = proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    codes[component] = proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    codes[component] = proc.wait(timeout=5)
        for log in self._logs:
            log.close()
        self._logs.clear()
        return codes

    def _polite_stop(self, host: str, port: int) -> None:
        try:
            sync_request(host, port, "shutdown", timeout=2.0)
        except (OSError, ServiceError):
            pass  # already dead (possibly on purpose)


__all__ = ["Supervisor", "sync_request"]
