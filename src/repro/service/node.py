"""A replica node: client sessions are processors, batches are chunks.

Each node holds a full copy of the key-value store and hosts a range of
client sessions.  A client batch executes speculatively against the
local replica (reads from applied state, writes buffered), producing
the chunk's R/W key sets; the node then requests permission to commit
from the arbiter exactly like a simulated processor's commit engine:

1. **Arbitrate** — send ``commit`` with the W/R signatures' key sets and
   the node's current epoch.  Denials (W collision, serial degraded
   mode, stale epoch) back off and re-execute; a re-execution is a
   fresh *attempt* with a fresh chunk id, so the arbiter never sees two
   meanings for one commit id.
2. **Propagate** — a granted write chunk owns commit sequence *seq*.
   The committer broadcasts the write-set to every replica (itself
   included); replicas apply updates in **contiguous seq order**,
   buffering holes, and only acknowledge an update once applied.
   Applying a W squashes every in-flight attempt whose R∪W signature
   collides with it — bulk disambiguation, exactly as in the simulator.
3. **Release** — when every replica acked, the committer releases the W
   at the arbiter and only then acknowledges the client.  An
   acknowledged write is therefore applied at *every* replica, which is
   what makes "zero acknowledged-write loss" hold across arbiter
   crashes: anything the client saw acked survives on every node.

A chunk granted-then-squashed (its grant raced a conflicting delivery)
still owns its seq: the committer broadcasts a **no-op** filler so the
contiguous apply order never stalls on an abandoned hole, releases, and
re-executes.

Failover appears to a node as three messages: ``poll`` (report applied
frontier and in-flight granted chunks to the new incarnation),
``fence`` (adopt the new epoch, squash requested attempts, void the
sequence holes no survivor owns), and thereafter grants stamped with
the new lease.  A node never adopts an epoch from a grant response —
only the fence carries the void set that makes the cut consistent.

Every protocol transition lands in the node's record log (see
:mod:`~repro.service.records` for the global sort keys) before its
network effect is visible, so the merged live trace replays through the
same contract checkers as a simulated run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ProgramError, ServiceError, TransportError
from repro.params import SignatureConfig
from repro.service import clock
from repro.service.cluster import ClusterConfig
from repro.service.records import (
    DELIVER,
    EXPAND,
    GRANT,
    RecordLog,
    SERIALIZE,
)
from repro.service.server import ServiceServer
from repro.service.transport import FailoverClient, RetryPolicy, ServiceClient
from repro.signatures.base import Signature
from repro.signatures.factory import SignatureFactory

#: Upper bound on squash/denial re-executions of one client batch.
MAX_ATTEMPTS = 10_000

#: How long an ``update`` handler waits for its sequence gap to fill
#: before NACKing (the sender retries); kept short so a stalled hole
#: does not hold peer connections hostage.
APPLY_WAIT_FRACTION = 0.25


@dataclass
class _Attempt:
    """One execution attempt of a client batch (one chunk candidate)."""

    id: int
    client: int  # client processor id (CLIENT_PROC_BASE + session index)
    client_seq: int
    reads: Dict[int, int]
    writes: Dict[int, int]
    rows: List[List[int]]  # [is_store, key, value] per op, program order
    r_keys: List[int]
    w_keys: List[int]
    sig: Signature  # R∪W footprint, squash detection vs delivered Ws
    frontier: int  # applied_upto when the reads were taken
    squashed: bool = False
    voided: bool = False


@dataclass
class _GrantedCommit:
    """A granted write chunk between grant and release (poll-reported)."""

    attempt: _Attempt
    seq: int
    epoch: int
    noop: bool
    released: bool = False


class NodeServer(ServiceServer):
    """One replica process: KV store, client sessions, commit pipeline."""

    def __init__(self, config: ClusterConfig, index: int):
        endpoint = config.nodes[index]
        name = f"node{index}"
        super().__init__(name, endpoint.host, endpoint.port)
        self.config = config
        self.index = index
        self.epoch = 1
        self.store: Dict[int, int] = {}
        self.applied_upto = 0
        self.records = RecordLog(config.record_path(name))
        self._factory = SignatureFactory(SignatureConfig(exact=True))
        self._policy = RetryPolicy(
            attempts=config.retry_attempts,
            base=config.retry_base,
            cap=config.retry_cap,
            timeout=config.request_timeout,
        )
        self._arbiter = FailoverClient(
            config.arbiter_endpoints(), self._policy, name=f"{name}->arb"
        )
        self._peers: Dict[int, List[ServiceClient]] = {}
        self._peer_rr = 0
        # Commit pipeline state.
        self._next_attempt = index * 1_000_000 + 1
        self._inflight: Dict[int, _Attempt] = {}  # squash window (requested)
        self._granted: Dict[int, _GrantedCommit] = {}  # grant..release
        self._pending: Dict[int, dict] = {}  # buffered updates by seq
        self._voids: Set[int] = set()
        self._applied_commits: Set[int] = set()
        self._buffered_commits: Dict[int, int] = {}  # commit_id -> seq
        self._apply_waiters: List[asyncio.Event] = []
        self._max_seq_seen = 0
        # Client session bookkeeping.
        self._txn_futures: Dict[Tuple[int, int], asyncio.Future] = {}
        self._done: Dict[int, Tuple[int, dict]] = {}
        self._op_base: Dict[int, int] = {}
        self._ro_counter = 0
        #: While a takeover is in progress (between a recovery poll and
        #: its fence) applies freeze, so nothing commits into the old
        #: epoch after the new incarnation snapshotted our state.
        self._quiesced_until = 0.0

    # ------------------------------------------------------------------
    # Request dispatch (ServiceServer hook)
    # ------------------------------------------------------------------
    async def handle(self, method: str, msg: dict) -> dict:
        if method == "txn":
            return await self._handle_txn(msg)
        if method == "update":
            return await self._handle_update(msg)
        if method == "poll":
            return self._handle_poll()
        if method == "fence":
            return self._handle_fence(msg)
        if method == "ping":
            return {"role": "node", "index": self.index, "epoch": self.epoch}
        if method == "status":
            return self._handle_status()
        if method == "snapshot":
            return {"store": {str(k): v for k, v in sorted(self.store.items())},
                    "applied_upto": self.applied_upto, "epoch": self.epoch}
        if method == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        return {"error": f"unknown method {method!r}"}

    def _handle_status(self) -> dict:
        return {
            "role": "node",
            "index": self.index,
            "epoch": self.epoch,
            "applied_upto": self.applied_upto,
            "keys": len(self.store),
            "inflight": len(self._inflight),
            "granted": len(self._granted),
            "buffered": len(self._pending),
            "voids": len(self._voids),
        }

    async def on_shutdown(self) -> None:
        import json
        import os

        # Drain in-flight commits so every emitted delivery has its
        # serialize record on disk before the snapshot freezes the run.
        deadline = clock.monotonic() + 2.0
        while self._granted and clock.monotonic() < deadline:
            await asyncio.sleep(0.01)
        snapshot = {
            "store": {str(k): v for k, v in sorted(self.store.items())},
            "applied_upto": self.applied_upto,
            "epoch": self.epoch,
        }
        path = self.config.snapshot_path(f"node{self.index}")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, sort_keys=True)
        self.records.close()
        await self._arbiter.close()
        for pool in self._peers.values():
            for client in pool:
                await client.close()

    # ------------------------------------------------------------------
    # Client transactions
    # ------------------------------------------------------------------
    async def _handle_txn(self, msg: dict) -> dict:
        client = int(msg["client"])
        client_seq = int(msg["client_seq"])
        done = self._done.get(client)
        if done is not None and done[0] == client_seq:
            return dict(done[1])  # idempotent client retry
        if done is not None and client_seq < done[0]:
            return {"error": f"stale client_seq {client_seq} (done {done[0]})"}
        key = (client, client_seq)
        future = self._txn_futures.get(key)
        if future is None:
            future = asyncio.ensure_future(
                self._run_txn(client, client_seq, list(msg["ops"]))
            )
            self._txn_futures[key] = future
        try:
            result = await asyncio.shield(future)
        finally:
            if future.done():
                self._txn_futures.pop(key, None)
        self._done[client] = (client_seq, result)
        return dict(result)

    def _execute(self, ops: List[list]) -> Tuple[Dict[int, int], Dict[int, int], List[List[int]]]:
        """Run a batch against applied state; synchronous, hence atomic."""
        reads: Dict[int, int] = {}
        writes: Dict[int, int] = {}
        rows: List[List[int]] = []
        for op in ops:
            kind = op[0]
            key = int(op[1])
            if kind == "r":
                value = writes.get(key, self.store.get(key, 0))
                reads[key] = value
                rows.append([False, key, value])
            elif kind == "w":
                value = int(op[2])
                writes[key] = value
                rows.append([True, key, value])
            else:
                raise ProgramError(f"unknown txn op kind {kind!r}")
        return reads, writes, rows

    def _new_attempt(self, client: int, client_seq: int, ops: List[list]) -> _Attempt:
        reads, writes, rows = self._execute(ops)
        r_keys = sorted(reads)
        w_keys = sorted(writes)
        attempt = _Attempt(
            id=self._next_attempt,
            client=client,
            client_seq=client_seq,
            reads=reads,
            writes=writes,
            rows=rows,
            r_keys=r_keys,
            w_keys=w_keys,
            sig=self._factory.from_addresses(r_keys + w_keys),
            frontier=self.applied_upto,
        )
        self._next_attempt += 1
        self._inflight[attempt.id] = attempt
        return attempt

    async def _run_txn(self, client: int, client_seq: int, ops: List[list]) -> dict:
        backoff = self._policy
        rng = self._rng  # from ServiceServer, seeded per component
        for attempt_no in range(MAX_ATTEMPTS):
            attempt = self._new_attempt(client, client_seq, ops)
            read_only = not attempt.writes
            try:
                response = await self._arbiter.request(
                    "commit",
                    commit_id=attempt.id,
                    proc=client,
                    chunk=attempt.id,
                    w_keys=attempt.w_keys,
                    r_keys=attempt.r_keys,
                    epoch=self.epoch,
                    read_only=read_only,
                )
            except TransportError:
                self._inflight.pop(attempt.id, None)
                raise
            if not response.get("granted"):
                self._inflight.pop(attempt.id, None)
                await asyncio.sleep(backoff.backoff(min(attempt_no, 5), rng))
                continue
            grant_epoch = int(response["epoch"])
            if grant_epoch < self.epoch or (
                grant_epoch == self.epoch
                and clock.monotonic() < self._quiesced_until
            ):
                # A grant from a dead (or dying) incarnation: either it
                # predates an epoch we already adopted, or it landed
                # inside a takeover window, where the coming fence voids
                # any seq no poll reported.  Acting on it would commit
                # state the rest of the cluster discards; abandon the
                # attempt and re-arbitrate against whoever wins.
                self._inflight.pop(attempt.id, None)
                await asyncio.sleep(backoff.backoff(min(attempt_no, 5), rng))
                continue
            if read_only:
                self._inflight.pop(attempt.id, None)
                if attempt.squashed:
                    continue  # values were invalidated mid-request
                return self._finish_read_only(attempt, grant_epoch)
            result = await self._commit_write(attempt, grant_epoch, int(response["seq"]))
            if result is not None:
                return result
            # Granted-then-squashed (or voided): the seq was filled with a
            # no-op (or voided by a fence); re-execute the batch.
        raise ServiceError(
            f"client {client} txn {client_seq} exceeded {MAX_ATTEMPTS} attempts"
        )

    def _finish_read_only(self, attempt: _Attempt, epoch: int) -> dict:
        """Serialize a read-only chunk at the replica frontier it observed."""
        self._ro_counter += 1
        major = attempt.frontier + 0.5
        tail = (self.index, self._ro_counter)
        tick = self.records.tick()
        self.records.append(
            "chunk.grant",
            (epoch, major, GRANT) + tail,
            p=attempt.client,
            t=tick,
            commit=attempt.id,
            epoch=[epoch],
        )
        self._emit_serialize(attempt, epoch, (epoch, major, SERIALIZE) + tail)
        return {
            "committed": True,
            "reads": {str(k): v for k, v in sorted(attempt.reads.items())},
            "seq": None,
            "epoch": epoch,
        }

    def _emit_serialize(self, attempt: _Attempt, epoch: int, gkey: tuple) -> None:
        base = self._op_base.get(attempt.client, 0)
        rows = [
            [bool(row[0]), int(row[1]), int(row[2]), base + i]
            for i, row in enumerate(attempt.rows)
        ]
        self._op_base[attempt.client] = base + len(rows)
        self.records.append(
            "commit.serialize",
            gkey,
            p=attempt.client,
            commit=attempt.id,
            chunk=attempt.id,
            client_seq=attempt.client_seq,
            epoch=[epoch],
            ops=rows,
            w_lines=attempt.w_keys,
            r_lines=attempt.r_keys,
        )

    async def _commit_write(
        self, attempt: _Attempt, epoch: int, seq: int
    ) -> Optional[dict]:
        """Propagate a granted write chunk; ``None`` means re-execute."""
        self._max_seq_seen = max(self._max_seq_seen, seq)
        noop = attempt.squashed
        self._inflight.pop(attempt.id, None)
        granted = _GrantedCommit(attempt=attempt, seq=seq, epoch=epoch, noop=noop)
        self._granted[attempt.id] = granted
        update = {
            "commit_id": attempt.id,
            "seq": seq,
            "committer": attempt.client,
            "origin": self.index,
            "writes": {str(k): v for k, v in sorted(attempt.writes.items())},
            "w_keys": attempt.w_keys,
            "epoch": epoch,
            "noop": noop,
        }
        try:
            delivered = await self._broadcast_update(update, granted)
            if delivered:
                if not noop:
                    # Emitted only now, after every replica applied: a
                    # commit voided by a takeover fence mid-broadcast
                    # leaves no serialize record for the replay to
                    # observe.  The gkey still sorts these before the
                    # commit's deliveries regardless of when they hit
                    # disk.
                    self._emit_serialize(
                        attempt, epoch, (epoch, seq, SERIALIZE, 0, 0)
                    )
                    self.records.append(
                        "dir.expand",
                        (epoch, seq, EXPAND, 0, 0),
                        committer=attempt.client,
                        dir=0,
                        invalidation_list=list(range(len(self.config.nodes))),
                    )
                await self._release(attempt.id, epoch)
        finally:
            self._granted.pop(attempt.id, None)
        if noop or not delivered:
            return None
        return {
            "committed": True,
            "reads": {str(k): v for k, v in sorted(attempt.reads.items())},
            "seq": seq,
            "epoch": epoch,
        }

    async def _release(self, commit_id: int, epoch: int) -> None:
        response = await self._arbiter.request(
            "release", commit_id=commit_id, epoch=epoch
        )
        if not response.get("ok"):
            raise ServiceError(f"release of commit {commit_id} refused: {response}")

    # ------------------------------------------------------------------
    # Update propagation
    # ------------------------------------------------------------------
    def _peer_client(self, peer: int) -> ServiceClient:
        pool = self._peers.get(peer)
        if pool is None:
            host, port = self.config.node_endpoints()[peer]
            pool = [
                ServiceClient(host, port, self._policy, name=f"node{self.index}->node{peer}.{i}")
                for i in range(4)
            ]
            self._peers[peer] = pool
        self._peer_rr = (self._peer_rr + 1) % len(pool)
        return pool[self._peer_rr]

    async def _broadcast_update(self, update: dict, granted: _GrantedCommit) -> bool:
        """Deliver to every replica (self included); True once all applied.

        False means the commit was voided by a takeover fence mid-flight
        (its grant postdated the recovery poll): no replica applied it,
        no replica ever will, and the attempt must re-execute.
        """
        tasks = [
            asyncio.ensure_future(self._send_update(peer, update, granted))
            for peer in range(len(self.config.nodes))
            if peer != self.index
        ]
        local_ok = await self._deliver_local(update, granted)
        remote = await asyncio.gather(*tasks)
        return local_ok and all(remote)

    async def _send_update(
        self, peer: int, update: dict, granted: _GrantedCommit
    ) -> bool:
        rounds = max(self._policy.attempts * 4, 40)
        for attempt in range(rounds):
            if granted.attempt.voided:
                return False
            client = self._peer_client(peer)
            try:
                response = await client.request("update", **update)
            except TransportError:
                response = {}
            if response.get("applied"):
                return True
            if response.get("voided"):
                granted.attempt.voided = True
                return False
            await asyncio.sleep(self._policy.backoff(min(attempt, 5), self._rng))
        raise ServiceError(
            f"update seq {update['seq']} never applied at node{peer} "
            f"after {rounds} rounds"
        )

    async def _deliver_local(self, update: dict, granted: _GrantedCommit) -> bool:
        rounds = max(self._policy.attempts * 4, 40)
        for _ in range(rounds):
            response = await self._handle_update(dict(update))
            if response.get("applied"):
                return True
            if response.get("voided") or granted.attempt.voided:
                granted.attempt.voided = True
                return False
            await asyncio.sleep(self._policy.base)
        raise ServiceError(
            f"update seq {update['seq']} never applied locally at "
            f"node{self.index} after {rounds} rounds"
        )

    async def _handle_update(self, msg: dict) -> dict:
        commit_id = int(msg["commit_id"])
        seq = int(msg["seq"])
        self._max_seq_seen = max(self._max_seq_seen, seq)
        if commit_id in self._applied_commits:
            return {"applied": True, "duplicate": True}
        if seq in self._voids or seq <= self.applied_upto:
            # The fence voided this hole (or something else owned the
            # seq); the sender's grant died with the old incarnation.
            return {"applied": False, "voided": True}
        if commit_id not in self._buffered_commits:
            self._buffered_commits[commit_id] = seq
            self._pending[seq] = msg
            self._drain()
        if commit_id in self._applied_commits:
            return {"applied": True}
        # Wait briefly for the gap below us to fill; NACK on timeout so
        # the sender retries instead of monopolizing the connection.
        wait = max(0.01, self.config.request_timeout * APPLY_WAIT_FRACTION)
        event = asyncio.Event()
        self._apply_waiters.append(event)
        try:
            await asyncio.wait_for(event.wait(), wait)
        except asyncio.TimeoutError:
            pass
        if commit_id in self._applied_commits:
            return {"applied": True}
        if seq in self._voids:
            self._buffered_commits.pop(commit_id, None)
            self._pending.pop(seq, None)
            return {"applied": False, "voided": True}
        return {"applied": False, "stalled": self.applied_upto}

    def _drain(self) -> None:
        """Apply buffered updates and skip voids, in contiguous seq order."""
        if clock.monotonic() < self._quiesced_until:
            return  # takeover in progress; the fence will drain us
        progressed = False
        while True:
            nxt = self.applied_upto + 1
            if nxt in self._voids:
                self._voids.discard(nxt)
                self.applied_upto = nxt
                progressed = True
                continue
            update = self._pending.pop(nxt, None)
            if update is None:
                break
            self._apply(update)
            self.applied_upto = nxt
            progressed = True
        if progressed:
            waiters, self._apply_waiters = self._apply_waiters, []
            for event in waiters:
                event.set()

    def _apply(self, update: dict) -> None:
        commit_id = int(update["commit_id"])
        self._applied_commits.add(commit_id)
        self._buffered_commits.pop(commit_id, None)
        if update.get("noop"):
            return
        writes = {int(k): int(v) for k, v in update["writes"].items()}
        for key, value in sorted(writes.items()):
            self.store[key] = value
        w_keys = [int(k) for k in update["w_keys"]]
        w_sig = self._factory.from_addresses(w_keys)
        w_set = set(w_keys)
        sig_conflicts: List[int] = []
        true_conflicts: List[int] = []
        victims: List[_Attempt] = []
        for attempt in sorted(self._inflight.values(), key=lambda a: a.id):
            if attempt.squashed:
                continue
            if not w_sig.disjoint(attempt.sig):
                sig_conflicts.append(attempt.id)
                victims.append(attempt)
                if w_set & (set(attempt.r_keys) | set(attempt.w_keys)):
                    true_conflicts.append(attempt.id)
        epoch = int(update["epoch"])
        seq = int(update["seq"])
        tick = self.records.tick()
        self.records.append(
            "inv.deliver",
            (epoch, seq, DELIVER, self.index, 0),
            p=self.index,
            t=tick,
            commit=commit_id,
            committer=int(update["committer"]),
            w_lines=w_keys,
            sig_conflicts=sig_conflicts,
            true_conflicts=true_conflicts,
        )
        for j, attempt in enumerate(victims):
            attempt.squashed = True
            self.records.append(
                "chunk.squash",
                (epoch, seq, DELIVER, self.index, 1 + j),
                p=self.index,
                t=tick,
                chunk=attempt.id,
                reason="conflict",
            )

    # ------------------------------------------------------------------
    # Failover: poll and fence
    # ------------------------------------------------------------------
    def _handle_poll(self) -> dict:
        # Freeze applies until the fence arrives: a proxy-delayed grant
        # from the dead incarnation must not commit here after the new
        # one snapshotted our frontier, or replicas would diverge on a
        # seq the fence voids elsewhere.  The window self-expires in
        # case the takeover itself dies.
        self._quiesced_until = clock.monotonic() + 4 * self.config.lease_timeout
        inflight = [
            {
                "commit_id": g.attempt.id,
                "seq": g.seq,
                "proc": g.attempt.client,
                "chunk": g.attempt.id,
                "w_keys": g.attempt.w_keys,
                "epoch": g.epoch,
                "noop": g.noop,
            }
            for g in sorted(self._granted.values(), key=lambda g: g.seq)
            if not g.released
        ]
        buffered = max(self._pending) if self._pending else 0
        return {
            "role": "node",
            "index": self.index,
            "epoch": self.epoch,
            "applied_upto": self.applied_upto,
            "max_seq": max(self.applied_upto, self._max_seq_seen, buffered),
            "inflight": inflight,
        }

    def _handle_fence(self, msg: dict) -> dict:
        epoch = int(msg["epoch"])
        next_seq = int(msg["next_seq"])
        live = {int(s) for s in msg["live"]}
        if epoch <= self.epoch:
            return {"fenced": False, "epoch": self.epoch}
        self.epoch = epoch
        # Sequence holes no survivor owns died with the old incarnation.
        voided = []
        for seq in range(self.applied_upto + 1, next_seq):
            if seq in live or seq in self._pending:
                continue
            self._voids.add(seq)
            voided.append(seq)
        # Requested attempts re-enter under the new epoch: their pending
        # grant (if any) died with the old arbiter, and conservatively
        # squashing them keeps the epoch cut simple and safe.
        for attempt in self._inflight.values():
            attempt.squashed = True
        # A grant that arrived after our poll response was never
        # re-admitted: its seq is void everywhere, so the attempt must
        # not broadcast, release, or ack.
        for granted in self._granted.values():
            if granted.epoch < epoch and granted.seq not in live:
                granted.attempt.voided = True
                granted.attempt.squashed = True
        self._quiesced_until = 0.0
        self._drain()
        return {"fenced": True, "epoch": self.epoch, "voided": voided}
