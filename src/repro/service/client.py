"""The client-facing SC key-value API: one batch = one chunk.

A :class:`KVClient` is a *sequential* session pinned to one home node:
its batches are that node's chunks for one logical processor
(``CLIENT_PROC_BASE + index``), numbered by a client-side sequence so
retried requests are idempotent (the node answers a duplicate
``(client, client_seq)`` with the original result, never re-executing).
Pinning matters — the home node owns the session's program-order
counter and its result cache, so a session that roamed would tear its
own program order apart.

Every acknowledged write batch is appended to the session's **ack
manifest** before :meth:`txn` returns.  The manifest is the client's
half of the zero-acknowledged-write-loss bargain: certification replays
the merged trace and then audits that every manifest entry's writes
survived into the final replicated store, crashes or not.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.service.cluster import CLIENT_PROC_BASE, ClusterConfig
from repro.service.transport import RetryPolicy, ServiceClient

#: A batch op: ``("r", key)`` or ``("w", key, value)``.
Op = Union[Tuple[str, int], Tuple[str, int, int]]


class KVClient:
    """One sequential client session against its home node."""

    def __init__(self, config: ClusterConfig, index: int):
        self.config = config
        self.index = index
        self.proc = CLIENT_PROC_BASE + index
        self.home = index % len(config.nodes)
        endpoint = config.nodes[self.home]
        # Client legs get a deeper retry budget than server legs: a txn
        # spanning an arbiter takeover is *supposed* to stall and then
        # succeed, not error out of the session.
        policy = RetryPolicy(
            attempts=max(4 * config.retry_attempts, 20),
            base=config.retry_base,
            cap=config.retry_cap,
            timeout=max(
                config.request_timeout, 4 * config.lease_timeout
            ),
        )
        self._client = ServiceClient(
            endpoint.host,
            endpoint.connect_port(config.via_proxy),
            policy,
            name=f"client{index}->node{self.home}",
        )
        self._next_seq = 1
        self._manifest_path = os.path.join(
            config.service_dir, f"client{index}.acks.jsonl"
        )
        self._manifest: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    async def close(self) -> None:
        await self._client.close()
        if self._manifest is not None:
            self._manifest.close()
            self._manifest = None

    def _record_ack(self, entry: dict) -> None:
        if self._manifest is None:
            os.makedirs(self.config.service_dir, exist_ok=True)
            self._manifest = open(self._manifest_path, "a", encoding="utf-8")
        self._manifest.write(json.dumps(entry, sort_keys=True) + "\n")
        self._manifest.flush()

    # ------------------------------------------------------------------
    async def txn(self, ops: Sequence[Op]) -> Dict[str, int]:
        """Run one batch as one chunk; returns ``{key: value}`` reads.

        Raises :class:`ServiceError` on a protocol error and the
        transport's typed errors when the home node stays unreachable
        past the whole retry budget.
        """
        wire_ops: List[list] = []
        writes: Dict[str, int] = {}
        for op in ops:
            if op[0] == "r":
                wire_ops.append(["r", int(op[1])])
            elif op[0] == "w":
                wire_ops.append(["w", int(op[1]), int(op[2])])
                writes[str(int(op[1]))] = int(op[2])
            else:
                raise ServiceError(f"unknown op kind {op[0]!r}")
        client_seq = self._next_seq
        self._next_seq += 1
        response = await self._client.request(
            "txn", client=self.proc, client_seq=client_seq, ops=wire_ops
        )
        if not response.get("committed"):
            raise ServiceError(
                f"client {self.proc} txn {client_seq} failed: {response}"
            )
        if writes:
            self._record_ack(
                {
                    "client": self.proc,
                    "client_seq": client_seq,
                    "seq": response.get("seq"),
                    "epoch": response.get("epoch"),
                    "writes": writes,
                }
            )
        return {k: int(v) for k, v in response.get("reads", {}).items()}

    # Convenience single-op wrappers ------------------------------------
    async def put(self, key: int, value: int) -> None:
        await self.txn([("w", key, value)])

    async def get(self, key: int) -> int:
        reads = await self.txn([("r", key)])
        return reads[str(key)]


def load_ack_manifests(directory: str) -> List[dict]:
    """Read every client ack manifest under ``directory``."""
    entries: List[dict] = []
    names = sorted(
        name for name in os.listdir(directory)  # detlint: ok[DET006] — sorted immediately
        if name.endswith(".acks.jsonl")
    )
    for name in names:
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    return entries


__all__ = ["KVClient", "Op", "load_ack_manifests"]
