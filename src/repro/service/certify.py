"""Post-run certification: the merged live history must be SC.

A service run leaves per-process record logs, per-node store snapshots,
and per-client ack manifests under the service directory.  This module
turns them into one schema-v2 trace and holds it to the same standard
as a simulated run:

1. **Merge** every record log on the global sort keys into a single
   serialize-order stream (see :mod:`~repro.service.records`).
2. **Replay** the ``commit.serialize`` op logs through the dynamic SC
   checker (:mod:`~repro.verify.sc_checker`) — the live run's history.
3. **Check** all five PR 7 component contracts plus the composition
   obligation over the merged stream (:func:`~repro.contracts.checker`).
4. **Converge**: every node snapshot must equal the replay's final
   memory — the replicas agree with each other *and* with the committed
   history, crashes or not.
5. **Audit acks**: every write batch a client saw acknowledged must
   appear as a serialize record with identical writes.  This is the
   zero-acknowledged-write-loss guarantee made checkable: an ack is
   only sent after every replica applied, so a crash may lose
   un-acknowledged work, never acknowledged work.

The merged trace is written to ``<dir>/merged.trace.jsonl`` so the
standard ``repro analyze contracts`` CLI (and CI) can re-verify it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.contracts.checker import ContractReport, check_trace
from repro.replay.schema import Trace, TraceRecord, make_header, write_trace
from repro.service.client import load_ack_manifests
from repro.service.records import load_merged_records
from repro.verify.history import ExecutionHistory
from repro.verify.sc_checker import check_sequential_consistency

MERGED_TRACE_NAME = "merged.trace.jsonl"


@dataclass
class CertifyResult:
    """The full verdict for one live service run."""

    sc_ok: bool
    sc_reason: str
    contracts: ContractReport
    convergence_ok: Optional[bool]  # None: no snapshots to compare
    convergence_detail: str
    acked_ok: bool
    lost_acks: List[dict] = field(default_factory=list)
    records: int = 0
    chunks: int = 0
    snapshots: int = 0
    acked_writes: int = 0
    trace_path: str = ""

    @property
    def ok(self) -> bool:
        return (
            self.sc_ok
            and self.contracts.ok
            and self.convergence_ok is not False
            and self.acked_ok
        )

    def payload(self) -> dict:
        return {
            "ok": self.ok,
            "sc_ok": self.sc_ok,
            "sc_reason": self.sc_reason,
            "contracts_ok": self.contracts.ok,
            "failing_components": list(self.contracts.failing_components),
            "convergence_ok": self.convergence_ok,
            "convergence_detail": self.convergence_detail,
            "acked_ok": self.acked_ok,
            "lost_acks": self.lost_acks[:8],
            "records": self.records,
            "chunks": self.chunks,
            "snapshots": self.snapshots,
            "acked_writes": self.acked_writes,
            "trace_path": self.trace_path,
        }


# ----------------------------------------------------------------------

def _replay(records: List[TraceRecord]) -> Tuple[ExecutionHistory, Dict[int, int], int]:
    """Feed serialize-order op logs into a dynamic execution history."""
    history = ExecutionHistory()
    memory: Dict[int, int] = {}
    chunks = 0
    for record in records:
        if record.ev != "commit.serialize" or "ops" not in record.data:
            continue
        chunks += 1
        chunk = record.data.get("chunk")
        for op in record.data["ops"]:
            is_store, addr, value, program_index = op
            history.record(
                time=record.t,
                proc=int(record.p),
                is_store=bool(is_store),
                word_addr=int(addr),
                value=int(value),
                program_index=int(program_index),
                chunk_id=chunk if chunk is None else int(chunk),
            )
            if is_store:
                memory[int(addr)] = int(value)
    return history, memory, chunks


def _load_snapshots(directory: str) -> Dict[str, Dict[int, int]]:
    snapshots: Dict[str, Dict[int, int]] = {}
    names = sorted(
        name for name in os.listdir(directory)  # detlint: ok[DET006] — sorted immediately
        if name.endswith(".snapshot.json")
    )
    for name in names:
        with open(os.path.join(directory, name), "r", encoding="utf-8") as fh:
            obj = json.load(fh)
        snapshots[name[: -len(".snapshot.json")]] = {
            int(k): int(v) for k, v in obj.get("store", {}).items()
        }
    return snapshots


def _nonzero(memory: Dict[int, int]) -> Dict[int, int]:
    return {k: v for k, v in memory.items() if v != 0}


def _check_convergence(
    replay_memory: Dict[int, int], snapshots: Dict[str, Dict[int, int]]
) -> Tuple[Optional[bool], str]:
    if not snapshots:
        return None, "no node snapshots found (run still live or crashed?)"
    expected = _nonzero(replay_memory)
    for name, store in sorted(snapshots.items()):
        actual = _nonzero(store)
        if actual != expected:
            differing = sorted(set(actual) ^ set(expected))[:8]
            return False, (
                f"replica {name} diverges from the serialize-order replay "
                f"at word(s) {differing}"
            )
    return True, f"{len(snapshots)} replicas converged on the replayed image"


def _audit_acks(
    records: List[TraceRecord], manifests: List[dict]
) -> Tuple[bool, List[dict]]:
    """Every acknowledged write batch must exist in the merged trace."""
    serialized: Dict[Tuple[int, int], Dict[str, int]] = {}
    for record in records:
        if record.ev != "commit.serialize" or record.p is None:
            continue
        client_seq = record.data.get("client_seq")
        if client_seq is None:
            continue
        writes = {
            str(op[1]): int(op[2]) for op in record.data.get("ops", []) if op[0]
        }
        serialized[(int(record.p), int(client_seq))] = writes
    lost = []
    for entry in manifests:
        key = (int(entry["client"]), int(entry["client_seq"]))
        writes = {str(k): int(v) for k, v in entry.get("writes", {}).items()}
        if serialized.get(key) != writes:
            lost.append(entry)
    return not lost, lost


# ----------------------------------------------------------------------

def build_trace(
    records: List[TraceRecord],
    sc_ok: bool,
    memory: Dict[int, int],
    seed: int = 0,
    note: str = "",
) -> Trace:
    """Wrap the merged record stream as a schema-v2 run trace."""
    header = make_header(
        kind="run",
        config="service",
        seed=seed,
        workload={"kind": "service", "source": "live-cluster"},
        note=note or "merged live service run",
    )
    footer = {
        "footer": True,
        "sc_ok": sc_ok,
        "error": None,
        "final_memory": {str(k): v for k, v in sorted(_nonzero(memory).items())},
        "records": len(records),
    }
    return Trace(header=header, records=records, footer=footer)


def certify_run(directory: str, seed: int = 0) -> CertifyResult:
    """Certify one service run from its on-disk artifacts."""
    records = load_merged_records(directory)
    history, memory, chunks = _replay(records)
    sc = check_sequential_consistency(history)
    trace = build_trace(records, sc.ok, memory, seed=seed)
    report = check_trace(trace)
    snapshots = _load_snapshots(directory)
    convergence_ok, convergence_detail = _check_convergence(memory, snapshots)
    manifests = load_ack_manifests(directory)
    acked_ok, lost = _audit_acks(records, manifests)
    trace_path = os.path.join(directory, MERGED_TRACE_NAME)
    write_trace(trace, trace_path)
    return CertifyResult(
        sc_ok=sc.ok,
        sc_reason=sc.reason or "serialize-order replay is SC",
        contracts=report,
        convergence_ok=convergence_ok,
        convergence_detail=convergence_detail,
        acked_ok=acked_ok,
        lost_acks=lost,
        records=len(records),
        chunks=chunks,
        snapshots=len(snapshots),
        acked_writes=len(manifests),
        trace_path=trace_path,
    )


def render_certification(result: CertifyResult) -> str:
    lines = [
        f"merged records: {result.records}   chunks: {result.chunks}   "
        f"acked writes: {result.acked_writes}",
        f"  [{'ok ' if result.sc_ok else 'FAIL'}] sequential consistency "
        f"({result.sc_reason})",
        f"  [{'ok ' if result.contracts.ok else 'FAIL'}] component contracts"
        + (
            ""
            if result.contracts.ok
            else f" — failing: {', '.join(result.contracts.failing_components)}"
        ),
    ]
    if result.convergence_ok is None:
        lines.append(f"  [ -- ] replica convergence ({result.convergence_detail})")
    else:
        mark = "ok " if result.convergence_ok else "FAIL"
        lines.append(f"  [{mark}] replica convergence ({result.convergence_detail})")
    mark = "ok " if result.acked_ok else "FAIL"
    lines.append(
        f"  [{mark}] zero acknowledged-write loss "
        f"({len(result.lost_acks)} lost of {result.acked_writes})"
    )
    lines.append(f"merged trace: {result.trace_path}")
    return "\n".join(lines)


__all__ = [
    "CertifyResult",
    "MERGED_TRACE_NAME",
    "build_trace",
    "certify_run",
    "render_certification",
]
