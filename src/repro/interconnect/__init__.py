"""Generic interconnection network with per-class traffic accounting."""

from repro.interconnect.network import Network, NodeKind
from repro.interconnect.traffic import TrafficClass, TrafficMeter

__all__ = ["Network", "NodeKind", "TrafficClass", "TrafficMeter"]
