"""A 2D-mesh instantiation of the generic interconnect.

The paper's design works over "a generic network"; the default model is
an unloaded crossbar-like fabric (every pair of tiles two hops apart).
:class:`MeshNetwork` refines that into a 2D mesh with XY routing:
latency scales with Manhattan distance and per-link byte counters expose
where the commit traffic actually flows — the kind of topology a
distributed-arbiter machine (Section 4.2.3) would use.

Tile placement: processors fill the mesh row-major; each directory (and
its co-located arbiter) shares the tile of the same-index processor,
wrapping around if there are more directories than processors.  The
G-arbiter sits on tile 0.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.interconnect.network import Network, NodeId, NodeKind


class MeshNetwork(Network):
    """XY-routed 2D mesh with per-link utilization counters."""

    def __init__(
        self,
        rows: int,
        cols: int,
        num_processors: int,
        hop_cycles: int = 4,
        header_bytes: int = 8,
    ):
        super().__init__(hop_cycles=hop_cycles, header_bytes=header_bytes)
        if rows < 1 or cols < 1:
            raise ValueError("mesh dimensions must be positive")
        if rows * cols < num_processors:
            raise ValueError(
                f"a {rows}x{cols} mesh cannot place {num_processors} processors"
            )
        self.rows = rows
        self.cols = cols
        self.num_processors = num_processors
        #: Directed link (tile_a, tile_b) -> bytes carried.
        self.link_bytes: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def tile_of(self, node: NodeId) -> int:
        """Mesh tile index of an endpoint."""
        if node.kind is NodeKind.PROCESSOR:
            return node.index % (self.rows * self.cols)
        if node.kind in (NodeKind.DIRECTORY, NodeKind.ARBITER):
            # Directory/arbiter i lives on processor i's tile.
            return node.index % self.num_processors
        if node.kind is NodeKind.GLOBAL_ARBITER:
            return 0
        raise ValueError(f"unknown node kind {node.kind}")  # pragma: no cover

    def coordinates(self, tile: int) -> Tuple[int, int]:
        return divmod(tile, self.cols)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def hops(self, src: NodeId, dst: NodeId) -> int:
        src_tile = self.tile_of(src)
        dst_tile = self.tile_of(dst)
        if src_tile == dst_tile:
            return 0
        (r1, c1), (r2, c2) = self.coordinates(src_tile), self.coordinates(dst_tile)
        return abs(r1 - r2) + abs(c1 - c2)

    def _route(self, src_tile: int, dst_tile: int):
        """XY routing: correct the column first, then the row."""
        r, c = self.coordinates(src_tile)
        r2, c2 = self.coordinates(dst_tile)
        path = []
        while c != c2:
            step = 1 if c2 > c else -1
            nxt = r * self.cols + (c + step)
            path.append((r * self.cols + c, nxt))
            c += step
        while r != r2:
            step = 1 if r2 > r else -1
            nxt = (r + step) * self.cols + c
            path.append((r * self.cols + c, nxt))
            r += step
        return path

    # ------------------------------------------------------------------
    # Sending (adds per-link accounting on top of the class meter)
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, traffic_class, payload_bytes: int = 0) -> int:
        size = self.header_bytes + payload_bytes
        for link in self._route(self.tile_of(src), self.tile_of(dst)):
            self.link_bytes[link] = self.link_bytes.get(link, 0) + size
        return super().send(src, dst, traffic_class, payload_bytes)

    # ------------------------------------------------------------------
    # Utilization queries
    # ------------------------------------------------------------------
    def hottest_links(self, top: int = 5):
        """The ``top`` most-loaded directed links as (link, bytes)."""
        return sorted(self.link_bytes.items(), key=lambda kv: -kv[1])[:top]

    def total_link_bytes(self) -> int:
        return sum(self.link_bytes.values())

    def bisection_bytes(self) -> int:
        """Bytes crossing the vertical bisection (column cut at cols/2)."""
        cut = self.cols // 2
        total = 0
        for (a, b), size in self.link_bytes.items():
            __, ca = self.coordinates(a)
            __, cb = self.coordinates(b)
            if (ca < cut) != (cb < cut):
                total += size
        return total
