"""Traffic classification and byte accounting (paper Figure 11).

Every network message belongs to one :class:`TrafficClass`; the
:class:`TrafficMeter` totals bytes per class so the benchmark harness can
regenerate Figure 11's stacked breakdown (Rd/Wr, RdSig, WrSig, Inv,
Other), normalized to RC.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict


class TrafficClass(Enum):
    """Message categories used in Figure 11."""

    RD_WR = "Rd/Wr"  # demand reads/writes: requests + data responses
    RD_SIG = "RdSig"  # R-signature transfers
    WR_SIG = "WrSig"  # W-signature transfers
    INV = "Inv"  # invalidations and their acknowledgements
    OTHER = "Other"  # commit arbitration control, barriers, misc.

    # Members are singletons, so identity hashing is equivalent to the
    # default name hashing — and C-level, which matters because every
    # network message does two dict updates keyed by its class.
    __hash__ = object.__hash__


class TrafficMeter:
    """Byte totals per traffic class plus message counts."""

    def __init__(self) -> None:
        self.bytes: Dict[TrafficClass, int] = {cls: 0 for cls in TrafficClass}
        self.messages: Dict[TrafficClass, int] = {cls: 0 for cls in TrafficClass}

    def record(self, traffic_class: TrafficClass, num_bytes: int) -> None:
        self.bytes[traffic_class] += num_bytes
        self.messages[traffic_class] += 1

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def breakdown(self) -> Dict[str, int]:
        """Stable-keyed byte breakdown for reports."""
        return {cls.value: self.bytes[cls] for cls in TrafficClass}

    def normalized_to(self, baseline_total: float) -> Dict[str, float]:
        """Per-class bytes as a fraction of another run's total bytes."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        return {cls.value: self.bytes[cls] / baseline_total for cls in TrafficClass}
