"""A generic interconnection network model.

The paper deliberately targets "a generic network": BulkSC needs no
broadcast bus.  We model a symmetric packet-switched fabric connecting
processor nodes, directory nodes, and the arbiter:

* latency = ``hop_cycles`` x hop count, where nodes on the same chip tile
  (e.g. an arbiter combined with the single directory) are 0 hops apart
  and any two distinct tiles are 2 hops apart (request crosses the fabric,
  plus fabric ingress/egress).  This is the unloaded-latency model used by
  Table 2.
* bandwidth is accounted, not contended: Figure 11 measures traffic in
  bytes, and the paper reports unloaded latencies, so the network meter
  records bytes per :class:`~repro.interconnect.traffic.TrafficClass`
  without queueing delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from repro.interconnect.traffic import TrafficClass, TrafficMeter


class NodeKind(Enum):
    PROCESSOR = "proc"
    DIRECTORY = "dir"
    ARBITER = "arb"
    GLOBAL_ARBITER = "garb"


@dataclass(frozen=True)
class NodeId:
    """A network endpoint: kind + index within that kind."""

    kind: NodeKind
    index: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.value}{self.index}"


class Network:
    """Latency + traffic accounting for point-to-point messages."""

    def __init__(
        self,
        hop_cycles: int = 4,
        header_bytes: int = 8,
        combine_arbiter_with_directory: bool = True,
    ):
        self.hop_cycles = hop_cycles
        self.header_bytes = header_bytes
        self.combine_arbiter_with_directory = combine_arbiter_with_directory
        self.meter = TrafficMeter()
        # (id(src), id(dst)) -> (src, dst, latency).  Endpoints are
        # interned singletons, and the entry keeps strong references (plus
        # an identity re-check) so id() reuse cannot alias a stale hit.
        # Topology is fixed at construction, so entries never invalidate.
        self._latency_memo: dict = {}

    # -- topology -----------------------------------------------------------
    def hops(self, src: NodeId, dst: NodeId) -> int:
        """Hop count between two endpoints."""
        if src is dst or src == dst:
            return 0
        if self.combine_arbiter_with_directory and self._same_tile(src, dst):
            return 0
        return 2

    @staticmethod
    def _same_tile(a: NodeId, b: NodeId) -> bool:
        """Arbiter i and directory i share a tile (Figure 7b)."""
        ak = a.kind
        bk = b.kind
        if ak is NodeKind.ARBITER:
            if bk is NodeKind.DIRECTORY:
                return a.index == b.index
            return bk is NodeKind.ARBITER or bk is NodeKind.GLOBAL_ARBITER
        if ak is NodeKind.GLOBAL_ARBITER:
            return bk is NodeKind.ARBITER or bk is NodeKind.GLOBAL_ARBITER
        if ak is NodeKind.DIRECTORY and bk is NodeKind.ARBITER:
            return a.index == b.index
        return False

    def latency(self, src: NodeId, dst: NodeId) -> int:
        return self.hops(src, dst) * self.hop_cycles

    # -- sending -----------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        traffic_class: TrafficClass,
        payload_bytes: int = 0,
    ) -> int:
        """Account for one message and return its delivery latency."""
        meter = self.meter
        meter.bytes[traffic_class] += self.header_bytes + payload_bytes
        meter.messages[traffic_class] += 1
        entry = self._latency_memo.get((id(src), id(dst)))
        if entry is None or entry[0] is not src or entry[1] is not dst:
            entry = (src, dst, self.latency(src, dst))
            self._latency_memo[(id(src), id(dst))] = entry
        return entry[2]

    def control(self, src: NodeId, dst: NodeId, traffic_class: TrafficClass = TrafficClass.OTHER) -> int:
        """A header-only control message."""
        return self.send(src, dst, traffic_class, 0)

    # -- convenience node constructors ----------------------------------------
    # NodeIds are immutable and tiny, but frozen-dataclass construction is
    # slow and these are built on every message; intern them per index.
    @staticmethod
    def proc(index: int) -> NodeId:
        node = _PROC_NODES.get(index)
        if node is None:
            node = _PROC_NODES[index] = NodeId(NodeKind.PROCESSOR, index)
        return node

    @staticmethod
    def directory(index: int) -> NodeId:
        node = _DIR_NODES.get(index)
        if node is None:
            node = _DIR_NODES[index] = NodeId(NodeKind.DIRECTORY, index)
        return node

    @staticmethod
    def arbiter(index: int = 0) -> NodeId:
        node = _ARB_NODES.get(index)
        if node is None:
            node = _ARB_NODES[index] = NodeId(NodeKind.ARBITER, index)
        return node

    @staticmethod
    def global_arbiter() -> NodeId:
        return _GLOBAL_ARBITER_NODE


#: Interned endpoint singletons (pure values, shared across machines).
_PROC_NODES: dict = {}
_DIR_NODES: dict = {}
_ARB_NODES: dict = {}
_GLOBAL_ARBITER_NODE = NodeId(NodeKind.GLOBAL_ARBITER, 0)
