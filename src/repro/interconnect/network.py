"""A generic interconnection network model.

The paper deliberately targets "a generic network": BulkSC needs no
broadcast bus.  We model a symmetric packet-switched fabric connecting
processor nodes, directory nodes, and the arbiter:

* latency = ``hop_cycles`` x hop count, where nodes on the same chip tile
  (e.g. an arbiter combined with the single directory) are 0 hops apart
  and any two distinct tiles are 2 hops apart (request crosses the fabric,
  plus fabric ingress/egress).  This is the unloaded-latency model used by
  Table 2.
* bandwidth is accounted, not contended: Figure 11 measures traffic in
  bytes, and the paper reports unloaded latencies, so the network meter
  records bytes per :class:`~repro.interconnect.traffic.TrafficClass`
  without queueing delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from repro.interconnect.traffic import TrafficClass, TrafficMeter


class NodeKind(Enum):
    PROCESSOR = "proc"
    DIRECTORY = "dir"
    ARBITER = "arb"
    GLOBAL_ARBITER = "garb"


@dataclass(frozen=True)
class NodeId:
    """A network endpoint: kind + index within that kind."""

    kind: NodeKind
    index: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.value}{self.index}"


class Network:
    """Latency + traffic accounting for point-to-point messages."""

    def __init__(
        self,
        hop_cycles: int = 4,
        header_bytes: int = 8,
        combine_arbiter_with_directory: bool = True,
    ):
        self.hop_cycles = hop_cycles
        self.header_bytes = header_bytes
        self.combine_arbiter_with_directory = combine_arbiter_with_directory
        self.meter = TrafficMeter()

    # -- topology -----------------------------------------------------------
    def hops(self, src: NodeId, dst: NodeId) -> int:
        """Hop count between two endpoints."""
        if src == dst:
            return 0
        if self.combine_arbiter_with_directory and self._same_tile(src, dst):
            return 0
        return 2

    @staticmethod
    def _same_tile(a: NodeId, b: NodeId) -> bool:
        """Arbiter i and directory i share a tile (Figure 7b)."""
        arbiter_kinds = (NodeKind.ARBITER, NodeKind.GLOBAL_ARBITER)
        pair = {a.kind, b.kind}
        if pair == {NodeKind.ARBITER, NodeKind.DIRECTORY}:
            return a.index == b.index
        if NodeKind.GLOBAL_ARBITER in pair and NodeKind.DIRECTORY in pair:
            return False
        return a.kind in arbiter_kinds and b.kind in arbiter_kinds

    def latency(self, src: NodeId, dst: NodeId) -> int:
        return self.hops(src, dst) * self.hop_cycles

    # -- sending -----------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        traffic_class: TrafficClass,
        payload_bytes: int = 0,
    ) -> int:
        """Account for one message and return its delivery latency."""
        self.meter.record(traffic_class, self.header_bytes + payload_bytes)
        return self.latency(src, dst)

    def control(self, src: NodeId, dst: NodeId, traffic_class: TrafficClass = TrafficClass.OTHER) -> int:
        """A header-only control message."""
        return self.send(src, dst, traffic_class, 0)

    # -- convenience node constructors ----------------------------------------
    @staticmethod
    def proc(index: int) -> NodeId:
        return NodeId(NodeKind.PROCESSOR, index)

    @staticmethod
    def directory(index: int) -> NodeId:
        return NodeId(NodeKind.DIRECTORY, index)

    @staticmethod
    def arbiter(index: int = 0) -> NodeId:
        return NodeId(NodeKind.ARBITER, index)

    @staticmethod
    def global_arbiter() -> NodeId:
        return NodeId(NodeKind.GLOBAL_ARBITER, 0)
