"""Miss Status Holding Registers.

An :class:`MshrFile` bounds the number of outstanding line misses a cache
can have in flight.  Requests to a line that is already in flight merge
into the existing entry (secondary misses).  When the file is full, the
caller must stall until :meth:`earliest_free` — this is one of the levers
that differentiates the consistency models' overlap behaviour.
"""

from __future__ import annotations

from typing import Dict


class MshrFile:
    """Tracks outstanding misses as ``line_addr -> completion_time``."""

    def __init__(self, capacity: int, name: str = "mshr"):
        if capacity < 1:
            raise ValueError("MSHR capacity must be at least 1")
        self.capacity = capacity
        self.name = name
        self._outstanding: Dict[int, float] = {}
        # Earliest completion among outstanding entries; while ``now`` is
        # below it no entry can expire, so _expire is O(1) on the hot path.
        self._next_expiry = float("inf")
        self.primary_misses = 0
        self.secondary_misses = 0
        self.full_stalls = 0

    def _expire(self, now: float) -> None:
        if now < self._next_expiry:
            return
        outstanding = self._outstanding
        done = [addr for addr, t in outstanding.items() if t <= now]
        for addr in done:
            del outstanding[addr]
        self._next_expiry = min(outstanding.values(), default=float("inf"))

    def outstanding(self, now: float) -> int:
        self._expire(now)
        return len(self._outstanding)

    def in_flight(self, line_addr: int, now: float) -> bool:
        self._expire(now)
        return line_addr in self._outstanding

    def completion_time(self, line_addr: int, now: float) -> float:
        """When the in-flight miss for ``line_addr`` completes (else now)."""
        self._expire(now)
        return self._outstanding.get(line_addr, now)

    def earliest_free(self, now: float) -> float:
        """Earliest time an entry frees up (``now`` if one is free)."""
        self._expire(now)
        if len(self._outstanding) < self.capacity:
            return now
        self.full_stalls += 1
        return min(self._outstanding.values())

    def allocate(self, line_addr: int, completion_time: float, now: float) -> float:
        """Allocate (or merge into) an entry; returns the completion time.

        Callers must first consult :meth:`earliest_free` and advance their
        clock if the file is full; allocating into a full file raises.
        """
        self._expire(now)
        existing = self._outstanding.get(line_addr)
        if existing is not None:
            self.secondary_misses += 1
            return existing
        if len(self._outstanding) >= self.capacity:
            raise RuntimeError(f"{self.name}: allocate into full MSHR file")
        self.primary_misses += 1
        self._outstanding[line_addr] = completion_time
        if completion_time < self._next_expiry:
            self._next_expiry = completion_time
        return completion_time

    def clear(self) -> None:
        self._outstanding.clear()
        self._next_expiry = float("inf")
