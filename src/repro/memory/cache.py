"""Set-associative cache tag arrays with LRU replacement.

The cache stores *tags and state only* — data values live in the global
memory image and in speculative overlays (see :mod:`repro.memory`).  That
matches the BulkSC property that tag/data arrays are unmodified and
unaware of speculation.

Victim selection accepts a ``pinned`` predicate so the BDM can prevent the
displacement of speculatively-written lines (membership in any active W
signature).  When every way of a set is pinned, insertion fails and the
caller (the chunking policy) must close the chunk — the paper's "chunk
also finishes when its data is about to overflow a cache set".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterator, Optional

from repro.params import CacheGeometry


class LineState(Enum):
    """MESI states (baselines); BulkSC uses only SHARED/MODIFIED."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"

    @property
    def is_dirty(self) -> bool:
        return self is LineState.MODIFIED


@dataclass
class CacheLine:
    """One tag-array entry."""

    line_addr: int
    state: LineState
    lru_stamp: int = 0

    @property
    def dirty(self) -> bool:
        return self.state.is_dirty


@dataclass
class EvictionResult:
    """Outcome of inserting a line into a full set."""

    inserted: bool
    victim: Optional[CacheLine] = None  # evicted line needing handling


class SetAssocCache:
    """An LRU set-associative tag array."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        geometry.validate(name)
        self.geometry = geometry
        self.name = name
        self.num_sets = geometry.num_sets
        self.associativity = geometry.associativity
        self._set_mask = self.num_sets - 1
        # _sets[i] maps line_addr -> CacheLine for lines resident in set i.
        # Sets are materialized lazily on first insert: simulations touch a
        # tiny fraction of the (up to 4096) sets, and eagerly allocating one
        # dict per set dominated machine-construction time in the
        # commit-heavy litmus benchmark.
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        self._lru_clock = itertools.count()
        self.hits = 0
        self.misses = 0

    # -- geometry ------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    # -- lookup --------------------------------------------------------------
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line, updating LRU, or ``None`` on miss."""
        cache_set = self._sets.get(line_addr & self._set_mask)
        line = cache_set.get(line_addr) if cache_set is not None else None
        if line is not None:
            if touch:
                line.lru_stamp = next(self._lru_clock)
            self.hits += 1
            return line
        self.misses += 1
        return None

    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Lookup without LRU update or hit/miss accounting (snoops)."""
        cache_set = self._sets.get(line_addr & self._set_mask)
        return cache_set.get(line_addr) if cache_set is not None else None

    def contains(self, line_addr: int) -> bool:
        cache_set = self._sets.get(line_addr & self._set_mask)
        return cache_set is not None and line_addr in cache_set

    # -- insertion / eviction ---------------------------------------------------
    def insert(
        self,
        line_addr: int,
        state: LineState,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> EvictionResult:
        """Insert ``line_addr``, evicting LRU if the set is full.

        Args:
            state: Initial coherence state of the new line.
            pinned: Optional predicate; lines for which it returns True are
                not eligible victims (speculatively-written lines).

        Returns:
            An :class:`EvictionResult`; ``inserted`` is False when every
            candidate victim is pinned (set about to overflow).
        """
        index = self.set_index(line_addr)
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.lru_stamp = next(self._lru_clock)
            return EvictionResult(inserted=True)
        victim = None
        if len(cache_set) >= self.associativity:
            victim = self._pick_victim(cache_set, pinned)
            if victim is None:
                return EvictionResult(inserted=False)
            del cache_set[victim.line_addr]
        line = CacheLine(line_addr, state, next(self._lru_clock))
        cache_set[line_addr] = line
        return EvictionResult(inserted=True, victim=victim)

    def _pick_victim(
        self,
        cache_set: Dict[int, CacheLine],
        pinned: Optional[Callable[[int], bool]],
    ) -> Optional[CacheLine]:
        candidates = (
            line
            for line in cache_set.values()
            if pinned is None or not pinned(line.line_addr)
        )
        return min(candidates, key=lambda line: line.lru_stamp, default=None)

    def would_overflow(
        self, line_addr: int, pinned: Callable[[int], bool]
    ) -> bool:
        """True if inserting ``line_addr`` would find no evictable victim."""
        cache_set = self._sets.get(self.set_index(line_addr))
        if cache_set is None:
            return False
        if line_addr in cache_set or len(cache_set) < self.associativity:
            return False
        return all(pinned(line.line_addr) for line in cache_set.values())

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Remove a line (coherence invalidation); returns it if present."""
        cache_set = self._sets.get(line_addr & self._set_mask)
        return cache_set.pop(line_addr, None) if cache_set is not None else None

    def set_state(self, line_addr: int, state: LineState) -> None:
        line = self.probe(line_addr)
        if line is not None:
            line.state = state

    # -- iteration ---------------------------------------------------------------
    def lines_in_set(self, set_index: int) -> Iterator[CacheLine]:
        cache_set = self._sets.get(set_index)
        return iter(cache_set.values()) if cache_set is not None else iter(())

    def all_lines(self) -> Iterator[CacheLine]:
        # Set-index order, so iteration is independent of touch order.
        for set_index in sorted(self._sets):
            yield from self._sets[set_index].values()

    def resident_count(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SetAssocCache {self.name} {self.num_sets}x{self.associativity} "
            f"resident={self.resident_count()}>"
        )
