"""Address arithmetic and address-space regions.

Addresses are *word* addresses (integers).  A cache line holds
``words_per_line`` consecutive words; the *line address* is the word
address shifted right by ``log2(words_per_line)``.

:class:`AddressSpace` additionally tracks named regions so workloads can
lay out shared heaps, per-thread stacks, and lock/barrier words, and so
the statically-private optimization (paper Section 5.1) can classify an
address as private at "address translation time".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError


class AddressMap:
    """Pure address arithmetic for one machine geometry."""

    def __init__(self, words_per_line: int, num_directories: int = 1):
        if words_per_line & (words_per_line - 1):
            raise ConfigError("words_per_line must be a power of two")
        if num_directories & (num_directories - 1):
            raise ConfigError("num_directories must be a power of two")
        self.words_per_line = words_per_line
        self.num_directories = num_directories
        self._line_shift = words_per_line.bit_length() - 1
        self._dir_mask = num_directories - 1

    @property
    def line_shift(self) -> int:
        """``log2(words_per_line)``: word address -> line address shift."""
        return self._line_shift

    def line_of(self, word_addr: int) -> int:
        """Line address containing ``word_addr``."""
        return word_addr >> self._line_shift

    def word_offset(self, word_addr: int) -> int:
        return word_addr & (self.words_per_line - 1)

    def words_of_line(self, line_addr: int) -> range:
        base = line_addr << self._line_shift
        return range(base, base + self.words_per_line)

    def directory_of(self, line_addr: int) -> int:
        """Home directory module for a line (low-order interleaving)."""
        return line_addr & self._dir_mask

    def set_index(self, line_addr: int, num_sets: int) -> int:
        return line_addr & (num_sets - 1)


@dataclass(frozen=True)
class Region:
    """A named, half-open range ``[start_word, end_word)`` of the space."""

    name: str
    start_word: int
    end_word: int
    private_to: Optional[int] = None  # processor id, or None for shared

    def __contains__(self, word_addr: int) -> bool:
        return self.start_word <= word_addr < self.end_word

    @property
    def size_words(self) -> int:
        return self.end_word - self.start_word


class AddressSpace:
    """A flat word-addressed space carved into named regions.

    Regions never overlap.  Allocation is a simple bump pointer, with each
    region aligned to a line boundary so private and shared data never
    share a cache line (matching how a real allocator would page-align
    stacks and heaps).
    """

    #: Scattered regions are placed at ``region_id << SCATTER_SHIFT`` line
    #: addresses; 12 random id bits emulate the high virtual-address bits
    #: real allocations carry, which the bit-field signatures rely on.
    SCATTER_SHIFT = 24
    SCATTER_ID_BITS = 12

    def __init__(self, address_map: AddressMap, scatter_seed: int = 0):
        self.map = address_map
        self._regions: List[Region] = []
        self._regions_by_name: Dict[str, Region] = {}
        self._next_free_word = 0
        self._scatter_seed = scatter_seed
        self._scatter_ids_used: set = set()
        # Sorted region starts for bisect-free linear lookup; region counts
        # are tiny (a few dozen) so a list scan is fine and keeps it simple.

    def allocate(
        self,
        name: str,
        size_words: int,
        private_to: Optional[int] = None,
    ) -> Region:
        """Allocate a line-aligned region and register it."""
        if name in self._regions_by_name:
            raise ConfigError(f"region {name!r} already allocated")
        if size_words <= 0:
            raise ConfigError("region size must be positive")
        wpl = self.map.words_per_line
        start = (self._next_free_word + wpl - 1) // wpl * wpl
        # Round the size up to whole lines too, so the *next* region cannot
        # share this region's last line.
        size = (size_words + wpl - 1) // wpl * wpl
        region = Region(name, start, start + size, private_to)
        self._regions.append(region)
        self._regions_by_name[name] = region
        self._next_free_word = start + size
        return region

    def allocate_scattered(
        self,
        name: str,
        size_words: int,
        private_to: Optional[int] = None,
    ) -> Region:
        """Allocate a region at a randomized, widely-separated base.

        Emulates how a real virtual-memory layout separates heaps, stacks,
        and mapped segments: the region's base line address carries a
        random 12-bit id in its high bits, giving address signatures the
        high-bit entropy they exploit to keep cross-region aliasing low.
        Deterministic in (scatter_seed, name).
        """
        if name in self._regions_by_name:
            raise ConfigError(f"region {name!r} already allocated")
        if size_words <= 0:
            raise ConfigError("region size must be positive")
        wpl = self.map.words_per_line
        max_lines = 1 << self.SCATTER_SHIFT
        if size_words > max_lines * wpl:
            raise ConfigError(f"region {name!r} too large for scattered layout")
        region_id = self._scatter_id_for(name)
        # Stagger the low line bits too: without it every region would
        # start at cache set 0 and the low sets would thrash.
        stagger_lines = (region_id * 0x9E3779B1) & 0x3FFF
        start = ((region_id << self.SCATTER_SHIFT) + stagger_lines) * wpl
        size = (size_words + wpl - 1) // wpl * wpl
        region = Region(name, start, start + size, private_to)
        self._regions.append(region)
        self._regions_by_name[name] = region
        return region

    def _scatter_id_for(self, name: str) -> int:
        digest = zlib.crc32(name.encode("utf-8"), self._scatter_seed & 0xFFFFFFFF)
        mask = (1 << self.SCATTER_ID_BITS) - 1
        region_id = digest & mask
        while region_id in self._scatter_ids_used or region_id == 0:
            region_id = (region_id + 1) & mask
        self._scatter_ids_used.add(region_id)
        return region_id

    def region(self, name: str) -> Region:
        return self._regions_by_name[name]

    def region_of(self, word_addr: int) -> Optional[Region]:
        for region in self._regions:
            if word_addr in region:
                return region
        return None

    def is_statically_private(self, word_addr: int, proc: int) -> bool:
        """True if ``word_addr`` is in a region private to ``proc``.

        Models the page-level private attribute of Section 5.1 (checked at
        address-translation time).
        """
        region = self.region_of(word_addr)
        return region is not None and region.private_to == proc

    def regions(self) -> Tuple[Region, ...]:
        return tuple(self._regions)

    @property
    def highest_word(self) -> int:
        return self._next_free_word
