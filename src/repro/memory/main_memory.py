"""The committed memory image.

A single coherent word-addressed value store.  Consistency models layer
their uncommitted state (store buffers, chunk write buffers) on top; a
value reaches :class:`MainMemory` exactly when it becomes architecturally
visible to every processor.  This is what makes the litmus tests in
:mod:`repro.verify` meaningful: a weak model that drains its store buffer
late really does expose stale values to other processors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class MainMemory:
    """Word-addressed value store, default-zero."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, word_addr: int) -> int:
        self.reads += 1
        return self._words.get(word_addr, 0)

    def write(self, word_addr: int, value: int) -> None:
        self.writes += 1
        if value == 0:
            self._words.pop(word_addr, None)
        else:
            self._words[word_addr] = value

    def write_many(self, updates: Iterable[Tuple[int, int]]) -> None:
        """Apply a batch of (address, value) updates atomically.

        Used by chunk commit: all of a chunk's stores become visible in one
        step, which is what makes chunks appear atomic to other processors.
        """
        for word_addr, value in updates:
            self.write(word_addr, value)

    def peek(self, word_addr: int) -> int:
        """Read without bumping statistics (verification/debug)."""
        return self._words.get(word_addr, 0)

    def nonzero_words(self) -> Dict[int, int]:
        return dict(self._words)
