"""Memory substrate: addressing, set-associative caches, MSHRs, hierarchy.

The value model is split from the tag model:

* *Values* live in a single coherent image (``MainMemory``) plus the
  uncommitted overlays owned by consistency models (store buffers, chunk
  write buffers).
* *Tags* live in :class:`~repro.memory.cache.SetAssocCache` instances that
  determine hit/miss timing, evictions, and coherence state.

This split is exactly the property BulkSC exploits: the cache arrays are
oblivious to speculation; all speculative bookkeeping lives in signatures
and buffers outside the cache.
"""

from repro.memory.address import AddressMap, AddressSpace
from repro.memory.cache import CacheLine, LineState, SetAssocCache
from repro.memory.main_memory import MainMemory
from repro.memory.mshr import MshrFile

__all__ = [
    "AddressMap",
    "AddressSpace",
    "SetAssocCache",
    "CacheLine",
    "LineState",
    "MshrFile",
    "MainMemory",
]
