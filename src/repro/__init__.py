"""BulkSC: Bulk Enforcement of Sequential Consistency — reproduction.

A from-scratch, cycle-approximate multiprocessor simulator implementing
the BulkSC architecture (Ceze, Tuck, Montesinos, Torrellas — ISCA 2007)
together with the SC, RC, and SC++ baselines it is evaluated against.

Quickstart::

    from repro import run_workload, bsc_dypvt, rc_config
    from repro.workloads import splash2_workload

    config = bsc_dypvt()
    workload = splash2_workload("barnes", config)
    result = run_workload(config, workload.programs, workload.address_space)
    print(result.cycles, result.stats["commit.grants"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.params import (
    ArbiterTopology,
    BaselineConfig,
    BulkSCConfig,
    CacheGeometry,
    ConsistencyModelKind,
    MemoryConfig,
    NAMED_CONFIGS,
    PrivateDataMode,
    ProcessorConfig,
    SignatureConfig,
    SystemConfig,
    bsc_base,
    bsc_dypvt,
    bsc_exact,
    bsc_stpvt,
    paper_config,
    rc_config,
    sc_config,
    scpp_config,
    tso_config,
)
from repro.system import Machine, RunResult, run_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "ProcessorConfig",
    "MemoryConfig",
    "CacheGeometry",
    "BulkSCConfig",
    "BaselineConfig",
    "SignatureConfig",
    "ConsistencyModelKind",
    "PrivateDataMode",
    "ArbiterTopology",
    "NAMED_CONFIGS",
    "paper_config",
    "bsc_base",
    "bsc_dypvt",
    "bsc_stpvt",
    "bsc_exact",
    "sc_config",
    "rc_config",
    "tso_config",
    "scpp_config",
    # running
    "Machine",
    "RunResult",
    "run_workload",
]
