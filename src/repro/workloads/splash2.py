"""SPLASH-2 application profiles (11 apps, all the paper runs).

Each profile is calibrated against the per-application rows of the
paper's Tables 3 and 4: the read/write/private-write set sizes per chunk,
the empty-W commit fraction (via ``shared_write_frequency``), the sharing
pattern, and the true-sharing conflict level (via ``hot_fraction``).
Highlights the calibration preserves:

* **radix** — scatter-pattern writes across the whole key array: small
  read sets, the largest write sets, very few stack references, and heavy
  signature aliasing (its squash rate collapses with exact signatures).
* **ocean / fft** — partitioned grids with real boundary sharing and the
  highest directory-lookup counts.
* **water-ns / water-sp / lu / fmm** — overwhelmingly private
  computation: >96% empty-W commits, near-zero squashes.
* **raytrace / radiosity** — wide shared reads (scene data), work-queue
  style migratory writes, the highest true-sharing squash rates and the
  most Private-Buffer interventions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.params import SystemConfig
from repro.workloads.profiles import AppProfile, SharingPattern
from repro.workloads.program import Workload
from repro.workloads.synthetic import build_profile_workload

SPLASH2_PROFILES: Dict[str, AppProfile] = {
    "barnes": AppProfile(
        name="barnes",
        shared_read_lines=22.6,
        shared_write_lines=0.4,
        private_write_lines=11.9,
        shared_write_frequency=0.05,
        pattern=SharingPattern.READ_WIDE,
        hot_fraction=0.004,
        partition_lines=1536,
        locks=8,
        lock_interval=24,
        barrier_phases=3,
        stack_fraction=0.7,
        private_turnover=0.05,
    ),
    "cholesky": AppProfile(
        name="cholesky",
        shared_read_lines=42.0,
        shared_write_lines=0.9,
        private_write_lines=11.6,
        shared_write_frequency=0.04,
        pattern=SharingPattern.READ_WIDE,
        hot_fraction=0.002,
        partition_lines=2048,
        locks=8,
        lock_interval=32,
        barrier_phases=2,
        stack_fraction=0.65,
        private_turnover=0.05,
    ),
    "fft": AppProfile(
        name="fft",
        shared_read_lines=33.4,
        shared_write_lines=3.3,
        private_write_lines=22.7,
        shared_write_frequency=0.10,
        pattern=SharingPattern.PARTITIONED,
        hot_fraction=0.003,
        partition_lines=3072,
        locks=0,
        lock_interval=0,
        barrier_phases=4,
        stack_fraction=0.6,
        private_turnover=0.4,
    ),
    "fmm": AppProfile(
        name="fmm",
        shared_read_lines=33.8,
        shared_write_lines=0.3,
        private_write_lines=6.2,
        shared_write_frequency=0.04,
        pattern=SharingPattern.READ_WIDE,
        hot_fraction=0.003,
        partition_lines=2048,
        locks=8,
        lock_interval=32,
        barrier_phases=3,
        stack_fraction=0.75,
        private_turnover=0.03,
    ),
    "lu": AppProfile(
        name="lu",
        shared_read_lines=15.9,
        shared_write_lines=0.2,
        private_write_lines=10.8,
        shared_write_frequency=0.05,
        pattern=SharingPattern.PARTITIONED,
        hot_fraction=0.001,
        partition_lines=1024,
        locks=0,
        lock_interval=0,
        barrier_phases=4,
        stack_fraction=0.7,
        private_turnover=0.05,
    ),
    "ocean": AppProfile(
        name="ocean",
        shared_read_lines=45.3,
        shared_write_lines=6.7,
        private_write_lines=8.4,
        shared_write_frequency=0.42,
        pattern=SharingPattern.PARTITIONED,
        hot_fraction=0.004,
        partition_lines=4096,
        locks=2,
        lock_interval=40,
        barrier_phases=6,
        stack_fraction=0.6,
        private_turnover=0.3,
    ),
    "radiosity": AppProfile(
        name="radiosity",
        shared_read_lines=28.7,
        shared_write_lines=0.8,
        private_write_lines=15.2,
        shared_write_frequency=0.06,
        pattern=SharingPattern.MIGRATORY,
        hot_fraction=0.010,
        hot_lines=96,
        partition_lines=1536,
        locks=16,
        lock_interval=10,
        barrier_phases=2,
        stack_fraction=0.7,
        private_turnover=0.1,
    ),
    "radix": AppProfile(
        name="radix",
        shared_read_lines=14.9,
        shared_write_lines=5.2,
        private_write_lines=14.4,
        shared_write_frequency=0.68,
        pattern=SharingPattern.SCATTER,
        hot_fraction=0.002,
        partition_lines=4096,
        locks=0,
        lock_interval=0,
        barrier_phases=3,
        stack_fraction=0.05,  # "radix has very few stack references"
        private_turnover=0.3,
    ),
    "raytrace": AppProfile(
        name="raytrace",
        shared_read_lines=40.2,
        shared_write_lines=0.9,
        private_write_lines=12.7,
        shared_write_frequency=0.16,
        pattern=SharingPattern.MIGRATORY,
        hot_fraction=0.012,
        hot_lines=96,
        partition_lines=3072,
        locks=12,
        lock_interval=14,
        barrier_phases=1,
        stack_fraction=0.65,
        private_turnover=0.1,
    ),
    "water-ns": AppProfile(
        name="water-ns",
        shared_read_lines=20.2,
        shared_write_lines=0.15,
        private_write_lines=16.3,
        shared_write_frequency=0.01,
        pattern=SharingPattern.PARTITIONED,
        hot_fraction=0.001,
        partition_lines=1024,
        locks=4,
        lock_interval=64,
        barrier_phases=3,
        stack_fraction=0.75,
        private_turnover=0.01,
    ),
    "water-sp": AppProfile(
        name="water-sp",
        shared_read_lines=22.2,
        shared_write_lines=0.1,
        private_write_lines=17.0,
        shared_write_frequency=0.005,
        pattern=SharingPattern.PARTITIONED,
        hot_fraction=0.001,
        partition_lines=1024,
        locks=4,
        lock_interval=64,
        barrier_phases=3,
        stack_fraction=0.75,
        private_turnover=0.01,
    ),
}

#: Order used in every figure and table of the paper.
SPLASH2_ORDER = [
    "barnes",
    "cholesky",
    "fft",
    "fmm",
    "lu",
    "ocean",
    "radiosity",
    "radix",
    "raytrace",
    "water-ns",
    "water-sp",
]


def splash2_workload(
    app: str,
    config: SystemConfig,
    instructions_per_thread: int = 20_000,
    seed: int = 0,
    num_threads: Optional[int] = None,
) -> Workload:
    """Build the synthetic stand-in for one SPLASH-2 application."""
    try:
        profile = SPLASH2_PROFILES[app]
    except KeyError:
        raise KeyError(
            f"unknown SPLASH-2 app {app!r}; choose from {SPLASH2_ORDER}"
        ) from None
    return build_profile_workload(
        profile,
        config,
        num_threads=num_threads,
        instructions_per_thread=instructions_per_thread,
        seed=seed,
    )
