"""Application profiles: the knobs the synthetic generator understands.

Each profile describes, per 1,000 dynamic instructions (one paper-default
chunk), how a thread touches memory.  The values are calibrated against
the per-application statistics the paper reports in Tables 3 and 4 —
average read/write/private-write set sizes, the fraction of commits with
an empty W signature, and the squash behaviour — so that the synthetic
programs stress BulkSC the way the original applications did.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError


class SharingPattern(Enum):
    """How shared accesses are distributed across the shared heap."""

    #: Each thread works mostly in its own partition, reading a few lines
    #: across partition boundaries (grid/nearest-neighbour codes).
    PARTITIONED = "partitioned"
    #: Threads read widely across the whole shared structure (tree walks,
    #: scene databases) but write mostly their own partition.
    READ_WIDE = "read_wide"
    #: Writes scatter across the whole shared array (radix-style
    #: permutation), maximizing signature pressure and aliasing.
    SCATTER = "scatter"
    #: Hot shared objects bounce between threads under locks
    #: (transactional/commercial mixes).
    MIGRATORY = "migratory"


@dataclass(frozen=True)
class AppProfile:
    """Per-application workload description.

    Attributes (rates are per 1,000 dynamic instructions per thread):
        name: Application name as it appears in the paper's tables.
        shared_read_lines: Distinct shared lines read (paper "Read Set").
        shared_write_lines: Mean distinct shared lines written per chunk
            *averaged over all chunks* (paper "Write Set").
        private_write_lines: Distinct private-data lines written (paper
            "Priv. Write" set).
        shared_write_frequency: Fraction of 1k-instruction intervals that
            publish to shared data at all; with the mean held fixed this
            sets the empty-W commit fraction (Table 4).
        memory_fraction: Memory ops per dynamic instruction.
        pattern: Spatial distribution of shared accesses.
        hot_fraction: Fraction of shared accesses hitting the globally-hot
            line set (true-sharing conflict source).
        hot_lines: Size of the globally-hot line set.
        partition_lines: Per-thread shared-partition footprint, in lines.
        private_lines: Per-thread private working set, in lines.
        locks: Number of distinct locks; 0 disables critical sections.
        lock_interval: 1k-intervals between critical sections per thread.
        barrier_phases: Barrier-separated phases (SPLASH-style).
        stack_fraction: Fraction of private accesses going to the stack
            region (what BSCstpvt can classify statically; "radix has very
            few stack references").
        private_turnover: Lines per interval by which the hot private
            working-set window drifts.  Drifted-into lines are not yet
            dirty, so their first write lands in W — the small residual W
            pollution the dynamically-private scheme cannot remove.
    """

    name: str
    shared_read_lines: float = 25.0
    shared_write_lines: float = 1.5
    private_write_lines: float = 13.0
    shared_write_frequency: float = 0.15
    memory_fraction: float = 0.30
    pattern: SharingPattern = SharingPattern.PARTITIONED
    hot_fraction: float = 0.02
    hot_lines: int = 16
    partition_lines: int = 2048
    private_lines: int = 256
    locks: int = 4
    lock_interval: int = 8
    barrier_phases: int = 2
    stack_fraction: float = 0.7
    private_turnover: float = 0.3
    critical_section_lines: int = 2

    def validate(self) -> "AppProfile":
        if not 0 < self.memory_fraction < 1:
            raise ConfigError(f"{self.name}: memory_fraction out of range")
        if not 0 <= self.shared_write_frequency <= 1:
            raise ConfigError(f"{self.name}: shared_write_frequency out of range")
        if not 0 <= self.hot_fraction <= 1:
            raise ConfigError(f"{self.name}: hot_fraction out of range")
        if not 0 <= self.stack_fraction <= 1:
            raise ConfigError(f"{self.name}: stack_fraction out of range")
        if self.partition_lines < 1 or self.private_lines < 1:
            raise ConfigError(f"{self.name}: footprints must be positive")
        return self

    @property
    def writes_per_publishing_interval(self) -> float:
        """Distinct shared lines written in an interval that publishes."""
        if self.shared_write_frequency <= 0:
            return 0.0
        return self.shared_write_lines / self.shared_write_frequency
