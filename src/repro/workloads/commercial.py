"""Commercial application profiles: SPECjbb2000 and SPECweb2005.

The paper runs these under Simics full-system simulation (SPECjbb with 8
warehouses, SPECweb with the e-commerce mix) for over a billion
instructions.  The profiles reproduce what Tables 3-4 report about them
relative to SPLASH-2:

* much larger read sets (43.6 / 61.1 lines per chunk),
* substantially more shared writing — barely half the commits have an
  empty W signature (46.9% / 49.5% vs ~86% for SPLASH-2),
* migratory sharing through heap objects and locks (warehouse trees,
  connection state), giving moderate true-conflict squash rates, and
* the highest speculative-read displacement rates (big footprints).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.params import SystemConfig
from repro.workloads.profiles import AppProfile, SharingPattern
from repro.workloads.program import Workload
from repro.workloads.synthetic import build_profile_workload

COMMERCIAL_PROFILES: Dict[str, AppProfile] = {
    "sjbb2k": AppProfile(
        name="sjbb2k",
        shared_read_lines=43.6,
        shared_write_lines=3.6,
        private_write_lines=19.2,
        shared_write_frequency=0.42,
        memory_fraction=0.34,
        pattern=SharingPattern.MIGRATORY,
        hot_fraction=0.003,
        hot_lines=128,
        partition_lines=6144,
        private_lines=384,
        locks=16,
        lock_interval=10,
        barrier_phases=1,
        stack_fraction=0.55,
        private_turnover=0.25,
    ),
    "sweb2005": AppProfile(
        name="sweb2005",
        shared_read_lines=61.1,
        shared_write_lines=3.8,
        private_write_lines=21.5,
        shared_write_frequency=0.40,
        memory_fraction=0.36,
        pattern=SharingPattern.MIGRATORY,
        hot_fraction=0.0025,
        hot_lines=160,
        partition_lines=8192,
        private_lines=448,
        locks=24,
        lock_interval=10,
        barrier_phases=1,
        stack_fraction=0.55,
        private_turnover=0.3,
    ),
}

#: Order used in the paper's figures.
COMMERCIAL_ORDER = ["sjbb2k", "sweb2005"]


def commercial_workload(
    app: str,
    config: SystemConfig,
    instructions_per_thread: int = 20_000,
    seed: int = 0,
    num_threads: Optional[int] = None,
) -> Workload:
    """Build the synthetic stand-in for one commercial application."""
    try:
        profile = COMMERCIAL_PROFILES[app]
    except KeyError:
        raise KeyError(
            f"unknown commercial app {app!r}; choose from {COMMERCIAL_ORDER}"
        ) from None
    return build_profile_workload(
        profile,
        config,
        num_threads=num_threads,
        instructions_per_thread=instructions_per_thread,
        seed=seed,
    )
