"""Synthetic workload generators.

:func:`build_profile_workload` turns an :class:`~repro.workloads.profiles.
AppProfile` into per-thread programs over a laid-out address space; the
idiom workloads (partitioned array, producer/consumer, lock contention,
false sharing) are small, assertable programs used by the examples and
the correctness tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.rng import DeterministicRng
from repro.memory.address import AddressMap, AddressSpace
from repro.params import SystemConfig
from repro.workloads.profiles import AppProfile, SharingPattern
from repro.workloads.program import ProgramBuilder, Workload

#: Dynamic instructions per generation interval (one default chunk).
INTERVAL_INSTRUCTIONS = 1000


def _make_space(config: SystemConfig) -> AddressSpace:
    address_map = AddressMap(config.memory.words_per_line, config.num_directories)
    return AddressSpace(address_map)


# ---------------------------------------------------------------------------
# Profile-driven generator
# ---------------------------------------------------------------------------

class _ProfileThreadGenerator:
    """Generates one thread's program from a profile.

    The generator controls *distinct lines touched per interval* directly,
    because those are what the paper's Table 3 reports (read/write/private
    write set sizes per 1,000-instruction chunk):

    * shared reads sample ``shared_read_lines`` distinct lines per interval
      from the thread's partition (or wider, per the sharing pattern);
    * shared writes happen only in *publishing* intervals
      (``shared_write_frequency`` of them) and touch
      ``writes_per_publishing_interval`` distinct lines;
    * private writes reuse a *hot* window of ``private_write_lines`` lines
      that rotates slowly (``private_turnover`` lines/interval), so after
      warm-up the lines are dirty non-speculative and the dynamically-
      private optimization classifies them into Wpriv;
    * lock-protected critical sections touch migratory hot lines that are
      *partitioned per lock* — data-race-free by construction, with real
      cross-processor handoffs.
    """

    def __init__(
        self,
        profile: AppProfile,
        proc: int,
        num_threads: int,
        space: AddressSpace,
        rng: DeterministicRng,
        instructions: int,
    ):
        self.profile = profile
        self.proc = proc
        self.num_threads = num_threads
        self.space = space
        self.rng = rng
        self.instructions = instructions
        self.wpl = space.map.words_per_line
        if profile.pattern is SharingPattern.SCATTER:
            # One global array (e.g. radix's key array): every thread's
            # slice shares the same region's high address bits, which is
            # exactly what saturates the signature banks and reproduces
            # radix's pathological aliasing.
            shared_array = space.region("shared_array")
            self.partitions = [shared_array] * num_threads
            self._scatter_array = True
        else:
            self.partitions = [
                space.region(f"shared_part_{p}") for p in range(num_threads)
            ]
            self._scatter_array = False
        self.hot = space.region("hot_set")
        self.locks = space.region("locks") if profile.locks else None
        self.private = space.region(f"private_heap_{proc}")
        self.stack = space.region(f"stack_{proc}")
        self.builder = ProgramBuilder(name=f"{profile.name}.t{proc}")
        self._partition_lines = profile.partition_lines
        self._interval_index = 0
        # Hot private window: the lines written every interval.  Starts at
        # a per-thread offset and creeps forward by private_turnover lines
        # per interval, modeling slow working-set drift.
        self._priv_window_start = 0.0
        self._priv_window = max(1, int(round(profile.private_write_lines)))
        self._stack_hot = 8  # active frames

    # -- address selection ------------------------------------------------
    def _word_in_line(self, region_start: int, line_index: int) -> int:
        return region_start + line_index * self.wpl + self.rng.randint(0, self.wpl - 1)

    def _partition_word(self, owner: int, line: int) -> int:
        if self._scatter_array:
            line = owner * self._partition_lines + line
        return self._word_in_line(self.partitions[owner].start_word, line)

    def _own_partition_word(self) -> int:
        return self._partition_word(
            self.proc, self.rng.randint(0, self._partition_lines - 1)
        )

    def _any_partition_word(self) -> int:
        owner = self.rng.randint(0, self.num_threads - 1)
        return self._partition_word(
            owner, self.rng.randint(0, self._partition_lines - 1)
        )

    def _neighbor_boundary_word(self) -> int:
        neighbor = (self.proc + 1) % self.num_threads
        boundary = max(1, self._partition_lines // 16)
        return self._partition_word(neighbor, self.rng.randint(0, boundary - 1))

    def _shared_read_word(self) -> int:
        pattern = self.profile.pattern
        if pattern in (SharingPattern.READ_WIDE, SharingPattern.MIGRATORY):
            return self._any_partition_word()
        if pattern is SharingPattern.PARTITIONED and self.rng.random() < 0.12:
            return self._neighbor_boundary_word()
        return self._own_partition_word()

    def _shared_write_word(self) -> int:
        if self.profile.pattern is SharingPattern.SCATTER:
            return self._any_partition_word()
        return self._own_partition_word()

    def _hot_read_word(self) -> int:
        line = self.rng.zipf_index(self.profile.hot_lines, alpha=0.8)
        return self._word_in_line(self.hot.start_word, line)

    def _lock_hot_word(self, lock_index: int) -> int:
        """A migratory line owned by one lock (DRF critical sections)."""
        slice_size = max(1, self.profile.hot_lines // max(1, self.profile.locks))
        line = lock_index * slice_size + self.rng.randint(0, slice_size - 1)
        return self._word_in_line(self.hot.start_word, line % self.profile.hot_lines)

    def _private_write_word(self) -> int:
        if self.rng.random() < self.profile.stack_fraction:
            line = self.rng.randint(0, self._stack_hot - 1)
            return self._word_in_line(self.stack.start_word, line)
        start = int(self._priv_window_start)
        line = (start + self.rng.randint(0, self._priv_window - 1)) % self.profile.private_lines
        return self._word_in_line(self.private.start_word, line)

    def _private_read_word(self) -> int:
        # Reads concentrate on the same hot window, adding few new lines
        # to the chunk's read set.
        return self._private_write_word()

    def _lock_addr(self, index: int) -> int:
        assert self.locks is not None
        return self.locks.start_word + (index % self.profile.locks) * self.wpl

    # -- interval generation ---------------------------------------------
    def emit_interval(self) -> None:
        """Emit roughly one chunk's worth (~1,000 instructions) of work."""
        profile = self.profile
        self._interval_index += 1
        self._priv_window_start = (
            self._priv_window_start + profile.private_turnover
        ) % max(1, profile.private_lines)
        memory_budget = int(INTERVAL_INSTRUCTIONS * profile.memory_fraction)
        publishing = self.rng.random() < profile.shared_write_frequency
        # Distinct word sets for this interval.  The profile's read-set
        # target counts *all* lines read per chunk (the paper's Table 3
        # definition), so the private hot window's contribution comes out
        # of the shared sampling budget.
        private_read_lines = self._priv_window + self._stack_hot // 2
        shared_read_count = max(
            2, int(round(profile.shared_read_lines)) - private_read_lines
        )
        read_words = [self._shared_read_word() for __ in range(shared_read_count)]
        write_words = (
            [
                self._shared_write_word()
                for __ in range(max(1, int(round(profile.writes_per_publishing_interval))))
            ]
            if publishing
            else []
        )
        # Access streams: each shared read line touched ~1.3 times; the
        # rest of the memory budget goes to hot private traffic.
        ops: List[tuple] = []
        for word in read_words:
            ops.append(("sr", word))
            if self.rng.random() < 0.3:
                ops.append(("sr", word))
        hot_reads = int(memory_budget * self.profile.hot_fraction)
        for __ in range(hot_reads):
            ops.append(("sr", self._hot_read_word()))
        private_writes = max(1, int(round(profile.private_write_lines * 2.0)))
        for __ in range(private_writes):
            ops.append(("pw", self._private_write_word()))
        remaining = memory_budget - len(ops)
        for __ in range(max(0, remaining)):
            ops.append(("pr", self._private_read_word()))
        self.rng.shuffle(ops)
        # Publishing writes go in as one contiguous burst so they land in
        # a single chunk — shared-data publication is phase-like in real
        # applications, which is what makes most commits' W empty.
        if write_words:
            insert_at = self.rng.randint(0, len(ops))
            ops[insert_at:insert_at] = [("sw", word) for word in write_words]
        total_memory = len(ops)
        compute_budget = INTERVAL_INSTRUCTIONS - total_memory
        per_gap = compute_budget / max(1, total_memory)
        carry = 0.0
        in_critical = (
            profile.locks > 0
            and profile.lock_interval > 0
            and self._interval_index % profile.lock_interval == 0
        )
        if in_critical:
            lock_index = self.rng.randint(0, profile.locks - 1)
            self.builder.acquire(self._lock_addr(lock_index))
            for __ in range(profile.critical_section_lines):
                self.builder.read_modify_write(self._lock_hot_word(lock_index))
            self.builder.release(self._lock_addr(lock_index))
        for kind, word in ops:
            if kind == "sr" or kind == "pr":
                self.builder.load(word)
            elif kind == "sw":
                self.builder.store(word, self._interval_index)
            else:
                self.builder.store(word, self._interval_index)
            carry += per_gap
            if carry >= 1.0:
                burst = int(carry)
                self.builder.compute(burst)
                carry -= burst

    def _emit_warmup(self) -> None:
        """Initialize the private working set (one concentrated burst).

        Real applications initialize their stacks and private heaps before
        the main loops; concentrating the first-writes here means the
        lines are dirty non-speculative (dypvt-classifiable) from the
        first measured chunk onward instead of polluting W for the whole
        warm-up tail of a short run.
        """
        for line in range(self._stack_hot):
            self.builder.store(
                self._word_in_line(self.stack.start_word, line), 1
            )
        for line in range(self._priv_window):
            self.builder.store(
                self._word_in_line(self.private.start_word, line), 1
            )
            self.builder.compute(3)

    def generate(self) -> ProgramBuilder:
        profile = self.profile
        phases = max(1, profile.barrier_phases)
        total_intervals = max(1, self.instructions // INTERVAL_INSTRUCTIONS)
        per_phase = max(1, total_intervals // phases)
        # Stagger threads so interleavings differ across processors.
        self.builder.compute(self.rng.randint(10, 400))
        self._emit_warmup()
        barrier_id = 0
        for phase in range(phases):
            for __ in range(per_phase):
                self.emit_interval()
            if phases > 1 and phase < phases - 1:
                barrier_id += 1
                self.builder.barrier(barrier_id, self.num_threads)
        return self.builder


def build_profile_workload(
    profile: AppProfile,
    config: SystemConfig,
    num_threads: Optional[int] = None,
    instructions_per_thread: int = 20_000,
    seed: int = 0,
) -> Workload:
    """Generate a full workload from an application profile."""
    profile.validate()
    threads = num_threads if num_threads is not None else config.num_processors
    space = AddressSpace(
        AddressMap(config.memory.words_per_line, config.num_directories),
        scatter_seed=seed,
    )
    wpl = space.map.words_per_line
    space.allocate_scattered("hot_set", profile.hot_lines * wpl)
    if profile.pattern is SharingPattern.SCATTER:
        space.allocate_scattered(
            "shared_array", profile.partition_lines * threads * wpl
        )
    else:
        for proc in range(threads):
            space.allocate_scattered(
                f"shared_part_{proc}", profile.partition_lines * wpl
            )
    if profile.locks:
        space.allocate_scattered("locks", profile.locks * wpl)
    for proc in range(threads):
        space.allocate_scattered(
            f"private_heap_{proc}", profile.private_lines * wpl, private_to=proc
        )
        space.allocate_scattered(f"stack_{proc}", 64 * wpl, private_to=proc)
    rng = DeterministicRng(seed).fork(profile.name)
    programs = []
    for proc in range(threads):
        generator = _ProfileThreadGenerator(
            profile,
            proc,
            threads,
            space,
            rng.fork(f"thread{proc}"),
            instructions_per_thread,
        )
        programs.append(generator.generate().build())
    return Workload(
        name=profile.name,
        programs=programs,
        address_space=space,
        metadata={"profile": profile, "seed": seed},
    )


# ---------------------------------------------------------------------------
# Idiom workloads (examples + correctness tests)
# ---------------------------------------------------------------------------

def partitioned_array_workload(
    config: SystemConfig,
    num_threads: Optional[int] = None,
    elements_per_thread: int = 64,
    iterations: int = 4,
) -> Workload:
    """Grid-style kernel: update own slice, barrier, read the neighbour's.

    Deterministic final state: after ``iterations`` rounds every element
    holds ``iterations``; each thread's checksum register equals
    ``iterations * elements_per_thread`` — assertable under every model.
    """
    threads = num_threads if num_threads is not None else config.num_processors
    space = _make_space(config)
    wpl = space.map.words_per_line
    array = space.allocate("array", threads * elements_per_thread * wpl)
    programs = []
    for proc in range(threads):
        builder = ProgramBuilder(name=f"grid.t{proc}")
        base = array.start_word + proc * elements_per_thread * wpl
        neighbor = array.start_word + ((proc + 1) % threads) * elements_per_thread * wpl
        barrier_id = 0
        for it in range(1, iterations + 1):
            for i in range(elements_per_thread):
                builder.store(base + i * wpl, it)
                builder.compute(3)
            barrier_id += 1
            builder.barrier(barrier_id, threads)
            # Read the neighbour's freshly-written slice.
            for i in range(elements_per_thread):
                builder.load(neighbor + i * wpl, reg=f"n{i}")
                builder.compute(1)
            barrier_id += 1
            builder.barrier(barrier_id, threads)
        programs.append(builder.build())
    return Workload("partitioned_array", programs, space,
                    {"iterations": iterations, "elements": elements_per_thread})


def producer_consumer_workload(
    config: SystemConfig,
    payload_words: int = 16,
    rounds: int = 3,
) -> Workload:
    """Flag-based message passing between thread pairs.

    Producer writes a payload then raises a flag; consumer spins on the
    flag and must observe the complete payload — the MP litmus shape at
    workload scale.  Thread 2k produces for thread 2k+1.
    """
    threads = config.num_processors - config.num_processors % 2
    space = _make_space(config)
    wpl = space.map.words_per_line
    pairs = threads // 2
    payload = space.allocate("payload", pairs * rounds * payload_words * wpl)
    flags = space.allocate("flags", pairs * rounds * wpl)
    programs = []
    for proc in range(threads):
        pair = proc // 2
        is_producer = proc % 2 == 0
        builder = ProgramBuilder(name=f"mp.t{proc}")
        for round_index in range(rounds):
            slot = pair * rounds + round_index
            data_base = payload.start_word + slot * payload_words * wpl
            flag_addr = flags.start_word + slot * wpl
            if is_producer:
                for i in range(payload_words):
                    builder.store(data_base + i * wpl, 100 + round_index)
                    builder.compute(5)
                # Release semantics: the payload must be visible before
                # the flag.  SC/TSO order the stores anyway; genuine RC
                # requires the fence (this is what fences are *for*).
                builder.fence()
                builder.store(flag_addr, 1)
                builder.compute(50)
            else:
                builder.spin_until(flag_addr, 1)
                for i in range(payload_words):
                    builder.load(data_base + i * wpl, reg=f"d{round_index}_{i}")
                    builder.compute(5)
        programs.append(builder.build())
    return Workload(
        "producer_consumer",
        programs,
        space,
        {"rounds": rounds, "payload_words": payload_words, "pairs": pairs},
    )


def lock_contention_workload(
    config: SystemConfig,
    num_threads: Optional[int] = None,
    increments_per_thread: int = 10,
    num_counters: int = 1,
    think_time: int = 30,
) -> Workload:
    """Threads increment shared counters under locks.

    Data-race-free by construction: the final counter total must equal
    ``num_threads * increments_per_thread`` under *every* model — the
    DRF-implies-SC evidence for RC, and a direct correctness check for
    BulkSC's in-chunk lock semantics (paper Figure 6).
    """
    threads = num_threads if num_threads is not None else config.num_processors
    space = _make_space(config)
    wpl = space.map.words_per_line
    locks = space.allocate("locks", num_counters * wpl)
    counters = space.allocate("counters", num_counters * wpl)
    programs = []
    for proc in range(threads):
        builder = ProgramBuilder(name=f"locks.t{proc}")
        builder.compute(10 + proc * 7)
        for i in range(increments_per_thread):
            slot = (proc + i) % num_counters
            lock_addr = locks.start_word + slot * wpl
            counter_addr = counters.start_word + slot * wpl
            builder.acquire(lock_addr)
            builder.read_modify_write(counter_addr)
            builder.release(lock_addr)
            builder.compute(think_time)
        programs.append(builder.build())
    return Workload(
        "lock_contention",
        programs,
        space,
        {
            "num_counters": num_counters,
            "expected_total": threads * increments_per_thread,
            "counter_addrs": [
                counters.start_word + s * wpl for s in range(num_counters)
            ],
        },
    )


def false_sharing_workload(
    config: SystemConfig,
    num_threads: Optional[int] = None,
    writes_per_thread: int = 20,
) -> Workload:
    """Every thread hammers its own word of one shared cache line.

    No data races at word granularity, but constant line-level conflicts:
    under BulkSC the W∩W disambiguation term fires continuously, making
    this the worst-case squash stress test.
    """
    threads = num_threads if num_threads is not None else config.num_processors
    space = _make_space(config)
    wpl = space.map.words_per_line
    lines_needed = (threads + wpl - 1) // wpl
    shared = space.allocate("contended", max(1, lines_needed) * wpl)
    programs = []
    for proc in range(threads):
        builder = ProgramBuilder(name=f"false_sharing.t{proc}")
        addr = shared.start_word + proc  # each thread owns one word
        builder.compute(5 + proc * 3)
        for i in range(1, writes_per_thread + 1):
            builder.store(addr, i)
            builder.compute(8)
        builder.load(addr, reg="final")
        programs.append(builder.build())
    return Workload(
        "false_sharing",
        programs,
        space,
        {"writes_per_thread": writes_per_thread, "base_word": shared.start_word},
    )


def work_queue_workload(
    config: SystemConfig,
    num_threads: Optional[int] = None,
    tasks_per_worker: int = 6,
    think_time: int = 40,
) -> Workload:
    """Workers pop tasks from a lock-protected shared queue head.

    The queue head is the canonical *migratory* datum: it bounces between
    processors inside critical sections, which under BulkSC means every
    pop races speculatively and losers squash (paper Figure 6).  Each
    worker records the task ids it popped; correctness is exact under
    every model: the recorded ids across all workers are a permutation of
    ``0 .. total_tasks-1`` (no task lost, none processed twice).
    """
    from repro.cpu.isa import Reg, RegPlus

    threads = num_threads if num_threads is not None else config.num_processors
    space = _make_space(config)
    wpl = space.map.words_per_line
    lock = space.allocate("queue_lock", wpl)
    head = space.allocate("queue_head", wpl)
    results = space.allocate("results", threads * tasks_per_worker * wpl)
    programs = []
    for proc in range(threads):
        builder = ProgramBuilder(name=f"workqueue.t{proc}")
        builder.compute(5 + proc * 9)
        for k in range(tasks_per_worker):
            reg = f"task{k}"
            builder.acquire(lock.start_word)
            builder.load(head.start_word, reg=reg)
            builder.store(head.start_word, RegPlus(reg, 1))
            builder.release(lock.start_word)
            # "Process" the task: record which one we got, then think.
            slot = results.start_word + (proc * tasks_per_worker + k) * wpl
            builder.store(slot, Reg(reg))
            builder.compute(think_time)
        programs.append(builder.build())
    return Workload(
        "work_queue",
        programs,
        space,
        {
            "total_tasks": threads * tasks_per_worker,
            "head_addr": head.start_word,
            "result_addrs": [
                results.start_word + i * wpl
                for i in range(threads * tasks_per_worker)
            ],
        },
    )
