"""Workloads: thread-program construction and application profiles.

The paper evaluates 11 SPLASH-2 applications plus SPECjbb2000 and
SPECweb2005.  Those binaries (and the SESC/Simics toolchain that runs
them) are not reproducible offline, so this package generates *synthetic
trace programs* from per-application profiles calibrated against the
statistics the paper itself publishes for each app (Tables 3-4: read/
write/private-write set sizes, empty-W commit fractions, squash rates).
The generators exercise exactly the code paths that drive every figure:
private-vs-shared write classification, signature pressure, true sharing,
lock and barrier synchronization.

See DESIGN.md §5 for the substitution argument.
"""

from repro.workloads.program import ProgramBuilder, Workload
from repro.workloads.profiles import AppProfile, SharingPattern
from repro.workloads.synthetic import (
    build_profile_workload,
    false_sharing_workload,
    lock_contention_workload,
    partitioned_array_workload,
    producer_consumer_workload,
    work_queue_workload,
)
from repro.workloads.splash2 import SPLASH2_PROFILES, splash2_workload
from repro.workloads.commercial import COMMERCIAL_PROFILES, commercial_workload

__all__ = [
    "ProgramBuilder",
    "Workload",
    "AppProfile",
    "SharingPattern",
    "build_profile_workload",
    "partitioned_array_workload",
    "producer_consumer_workload",
    "lock_contention_workload",
    "false_sharing_workload",
    "work_queue_workload",
    "SPLASH2_PROFILES",
    "splash2_workload",
    "COMMERCIAL_PROFILES",
    "commercial_workload",
]
