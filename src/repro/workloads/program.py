"""Program construction helpers and the Workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cpu.isa import (
    Barrier,
    Compute,
    Fence,
    Io,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    Operand,
    SpinUntil,
    Store,
)
from repro.cpu.thread import ThreadProgram
from repro.errors import ProgramError
from repro.memory.address import AddressSpace


class ProgramBuilder:
    """Fluent construction of one thread's op sequence."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._ops: List[Op] = []
        self._reg_counter = 0

    # -- basic ops ------------------------------------------------------
    def load(self, addr: int, reg: Optional[str] = None) -> "ProgramBuilder":
        if reg is None:
            self._reg_counter += 1
            reg = f"t{self._reg_counter}"
        self._ops.append(Load(reg, addr))
        return self

    def store(self, addr: int, value: Operand) -> "ProgramBuilder":
        self._ops.append(Store(addr, value))
        return self

    def compute(self, count: int) -> "ProgramBuilder":
        if count < 0:
            raise ProgramError(f"compute count must be >= 0, got {count}")
        if count > 0:
            self._ops.append(Compute(count))
        return self

    def acquire(self, lock_addr: int) -> "ProgramBuilder":
        self._ops.append(LockAcquire(lock_addr))
        return self

    def release(self, lock_addr: int) -> "ProgramBuilder":
        self._ops.append(LockRelease(lock_addr))
        return self

    def barrier(self, barrier_id: int, participants: int) -> "ProgramBuilder":
        self._ops.append(Barrier(barrier_id, participants))
        return self

    def fence(self) -> "ProgramBuilder":
        self._ops.append(Fence())
        return self

    def spin_until(self, addr: int, value: int) -> "ProgramBuilder":
        self._ops.append(SpinUntil(addr, value))
        return self

    def io(self, device: int, value: Operand) -> "ProgramBuilder":
        self._ops.append(Io(device, value))
        return self

    # -- composite idioms -------------------------------------------------
    def read_modify_write(self, addr: int, addend: int = 1) -> "ProgramBuilder":
        """Unsynchronized increment: load, compute, store reg+addend."""
        self._reg_counter += 1
        reg = f"t{self._reg_counter}"
        self._ops.append(Load(reg, addr))
        self._ops.append(Compute(2))
        from repro.cpu.isa import RegPlus

        self._ops.append(Store(addr, RegPlus(reg, addend)))
        return self

    def critical_section(
        self, lock_addr: int, body: List[Op]
    ) -> "ProgramBuilder":
        self.acquire(lock_addr)
        self._ops.extend(body)
        self.release(lock_addr)
        return self

    # -- finalization ----------------------------------------------------
    def ops(self) -> List[Op]:
        return list(self._ops)

    def build(self) -> ThreadProgram:
        return ThreadProgram(self._ops, name=self.name)

    def __len__(self) -> int:
        return len(self._ops)


def validate_barriers(programs: List[ThreadProgram]) -> None:
    """Reject barrier declarations that would hang the simulation.

    A :class:`~repro.cpu.isa.Barrier` rendezvous only releases when
    exactly ``participants`` threads arrive at the same generation, so a
    malformed workload deadlocks silently at run time.  Statically
    checkable, so checked here, at :class:`Workload` build time:

    * every occurrence of one ``barrier_id`` must declare the same
      ``participants`` count (the run-time rendezvous enforces this too,
      but only after the simulation is already underway);
    * ``participants`` must be ≥ 1 and ≤ the thread count;
    * the number of threads using a ``barrier_id`` must equal its
      ``participants`` (fewer arrive → generation never fills; more →
      stragglers arrive into a generation that already released);
    * every participating thread must pass the barrier the same number
      of times (unequal generation counts strand the extra arrivals).

    Raises :class:`~repro.errors.ProgramError` with the offending
    barrier id and threads.
    """
    declared: Dict[int, int] = {}
    uses: Dict[int, Dict[int, int]] = {}  # barrier_id -> thread -> count
    for thread, program in enumerate(programs):
        for op in program:
            if not isinstance(op, Barrier):
                continue
            seen = declared.get(op.barrier_id)
            if seen is None:
                declared[op.barrier_id] = op.participants
            elif seen != op.participants:
                raise ProgramError(
                    f"barrier {op.barrier_id}: inconsistent participant "
                    f"counts ({seen} vs {op.participants} in thread {thread})"
                )
            uses.setdefault(op.barrier_id, {})
            uses[op.barrier_id][thread] = uses[op.barrier_id].get(thread, 0) + 1
    for barrier_id, participants in sorted(declared.items()):
        threads = uses[barrier_id]
        if participants < 1:
            raise ProgramError(
                f"barrier {barrier_id}: participants must be >= 1, "
                f"got {participants}"
            )
        if participants > len(programs):
            raise ProgramError(
                f"barrier {barrier_id}: declares {participants} participants "
                f"but the workload has only {len(programs)} threads"
            )
        if len(threads) != participants:
            users = ", ".join(f"t{t}" for t in sorted(threads))
            raise ProgramError(
                f"barrier {barrier_id}: declares {participants} participants "
                f"but {len(threads)} thread(s) use it ({users}) — the "
                "rendezvous would never release correctly"
            )
        counts = {threads[t] for t in threads}
        if len(counts) > 1:
            detail = ", ".join(
                f"t{t}x{threads[t]}" for t in sorted(threads)
            )
            raise ProgramError(
                f"barrier {barrier_id}: unequal generation counts across "
                f"threads ({detail}) — the extra arrivals would hang"
            )


@dataclass
class Workload:
    """A named set of thread programs over a laid-out address space.

    Barrier consistency is validated at construction
    (:func:`validate_barriers`): a workload that would deadlock at a
    rendezvous raises :class:`~repro.errors.ProgramError` here instead
    of hanging the simulation.
    """

    name: str
    programs: List[ThreadProgram]
    address_space: AddressSpace
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_barriers(self.programs)

    @property
    def num_threads(self) -> int:
        return len(self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(p.total_instructions for p in self.programs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Workload {self.name!r} threads={self.num_threads} "
            f"instructions={self.total_instructions}>"
        )
