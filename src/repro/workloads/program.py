"""Program construction helpers and the Workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cpu.isa import (
    Barrier,
    Compute,
    Fence,
    Io,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    Operand,
    SpinUntil,
    Store,
)
from repro.cpu.thread import ThreadProgram
from repro.memory.address import AddressSpace


class ProgramBuilder:
    """Fluent construction of one thread's op sequence."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._ops: List[Op] = []
        self._reg_counter = 0

    # -- basic ops ------------------------------------------------------
    def load(self, addr: int, reg: Optional[str] = None) -> "ProgramBuilder":
        if reg is None:
            self._reg_counter += 1
            reg = f"t{self._reg_counter}"
        self._ops.append(Load(reg, addr))
        return self

    def store(self, addr: int, value: Operand) -> "ProgramBuilder":
        self._ops.append(Store(addr, value))
        return self

    def compute(self, count: int) -> "ProgramBuilder":
        if count > 0:
            self._ops.append(Compute(count))
        return self

    def acquire(self, lock_addr: int) -> "ProgramBuilder":
        self._ops.append(LockAcquire(lock_addr))
        return self

    def release(self, lock_addr: int) -> "ProgramBuilder":
        self._ops.append(LockRelease(lock_addr))
        return self

    def barrier(self, barrier_id: int, participants: int) -> "ProgramBuilder":
        self._ops.append(Barrier(barrier_id, participants))
        return self

    def fence(self) -> "ProgramBuilder":
        self._ops.append(Fence())
        return self

    def spin_until(self, addr: int, value: int) -> "ProgramBuilder":
        self._ops.append(SpinUntil(addr, value))
        return self

    def io(self, device: int, value: Operand) -> "ProgramBuilder":
        self._ops.append(Io(device, value))
        return self

    # -- composite idioms -------------------------------------------------
    def read_modify_write(self, addr: int, addend: int = 1) -> "ProgramBuilder":
        """Unsynchronized increment: load, compute, store reg+addend."""
        self._reg_counter += 1
        reg = f"t{self._reg_counter}"
        self._ops.append(Load(reg, addr))
        self._ops.append(Compute(2))
        from repro.cpu.isa import RegPlus

        self._ops.append(Store(addr, RegPlus(reg, addend)))
        return self

    def critical_section(
        self, lock_addr: int, body: List[Op]
    ) -> "ProgramBuilder":
        self.acquire(lock_addr)
        self._ops.extend(body)
        self.release(lock_addr)
        return self

    # -- finalization ----------------------------------------------------
    def ops(self) -> List[Op]:
        return list(self._ops)

    def build(self) -> ThreadProgram:
        return ThreadProgram(self._ops, name=self.name)

    def __len__(self) -> int:
        return len(self._ops)


@dataclass
class Workload:
    """A named set of thread programs over a laid-out address space."""

    name: str
    programs: List[ThreadProgram]
    address_space: AddressSpace
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_threads(self) -> int:
        return len(self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(p.total_instructions for p in self.programs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Workload {self.name!r} threads={self.num_threads} "
            f"instructions={self.total_instructions}>"
        )
