"""Static analysis of workload programs and of the simulator itself.

Three program-level passes share one analysis core
(:mod:`repro.analysis.footprint`):

* :mod:`repro.analysis.conflict_graph` — Shasha–Snir-style cross-thread
  conflict edges over the op-level IR, critical-cycle detection (which
  op pairs can participate in an SC-violating reordering), and static
  prediction of which chunk pairs will conflict under a chunking policy;
* :mod:`repro.analysis.races` — lockset + happens-before race
  classification of every conflicting access pair, with op-level
  witnesses;
* :mod:`repro.analysis.outcomes` — exhaustive SC-outcome enumeration
  for small programs, cross-checked against dynamic litmus runs.

A fourth pass looks inward: :mod:`repro.analysis.detlint` is an
AST-based determinism lint over the simulator's own sources (unordered
set iteration, unseeded ``random``, wall-clock reads, ...), because the
chaos subsystem's byte-identical-replay guarantee is only as strong as
the simulator's determinism.

Everything is surfaced through ``python -m repro analyze``
(:mod:`repro.analysis.cli`).
"""

from repro.analysis.conflict_graph import (
    ConflictEdge,
    CriticalCycle,
    StaticConflictReport,
    build_conflict_report,
    predict_chunk_conflicts,
)
from repro.analysis.footprint import (
    Access,
    ProgramAnalysis,
    ThreadFootprint,
    analyze_programs,
)
from repro.analysis.outcomes import (
    EnumerationResult,
    FinalState,
    enumerate_sc_outcomes,
)
from repro.analysis.races import RaceReport, RacePair, detect_races
from repro.analysis.detlint import LintFinding, lint_paths, lint_source

__all__ = [
    "Access",
    "ConflictEdge",
    "CriticalCycle",
    "EnumerationResult",
    "FinalState",
    "LintFinding",
    "ProgramAnalysis",
    "RacePair",
    "RaceReport",
    "StaticConflictReport",
    "ThreadFootprint",
    "analyze_programs",
    "build_conflict_report",
    "detect_races",
    "enumerate_sc_outcomes",
    "lint_paths",
    "lint_source",
    "predict_chunk_conflicts",
]
