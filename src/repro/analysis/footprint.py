"""The shared analysis core: per-thread address footprints.

Every static pass starts from the same question — *which memory words
does each op touch, under which synchronization context?* — so the
extraction lives here, once.  Walking a :class:`~repro.cpu.thread.ThreadProgram`
produces one :class:`Access` per memory-touching op, annotated with

* the word address (always concrete in this IR — only store *values*
  can be register-dependent, in which case the access is flagged
  ``value_symbolic``);
* the **lockset** held at that point (Eraser-style: the set of lock
  words acquired but not yet released);
* the **barrier phase vector**: for each barrier id, how many
  generations of that barrier the thread has completed before the op.

The walk also performs the structural lint the downstream passes rely
on: lock acquire/release imbalance, double-acquire (self-deadlock),
and re-acquired registers are reported as warnings instead of crashing
the analyzer — malformed programs are exactly what a static tool must
survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.cpu.isa import (
    Barrier,
    Io,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    OpKind,
    Reg,
    RegPlus,
    SpinUntil,
    Store,
)
from repro.cpu.thread import ThreadProgram

#: Immutable barrier phase vector: ((barrier_id, completed_generations), ...).
PhaseVector = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class Access:
    """One memory access of one op, in its synchronization context."""

    thread: int
    op_index: int
    kind: OpKind
    addr: int
    is_read: bool
    is_write: bool
    #: Lock/spin/barrier traffic rather than data (lock words, spin flags).
    is_sync: bool
    #: The written value depends on registers (statically unknown).
    value_symbolic: bool
    lockset: FrozenSet[int]
    barrier_phases: PhaseVector

    @property
    def node(self) -> Tuple[int, int]:
        """Graph identity: ``(thread, op_index)``."""
        return (self.thread, self.op_index)

    def describe(self) -> str:
        mode = "RW" if (self.is_read and self.is_write) else (
            "W" if self.is_write else "R"
        )
        tag = " sync" if self.is_sync else ""
        return (
            f"t{self.thread}#{self.op_index} {self.kind.value} "
            f"{mode} @{self.addr:#x}{tag}"
        )


@dataclass
class ThreadFootprint:
    """Everything the static passes need to know about one thread."""

    thread: int
    name: str
    accesses: List[Access] = field(default_factory=list)
    #: Lock words this thread acquires or releases.
    lock_addrs: FrozenSet[int] = frozenset()
    #: Flag words this thread spins on.
    spin_addrs: FrozenSet[int] = frozenset()
    #: barrier_id -> number of occurrences in the thread.
    barrier_counts: Dict[int, int] = field(default_factory=dict)
    #: Structural problems found during the walk (human-readable).
    warnings: List[str] = field(default_factory=list)
    #: Locks still held when the program ends.
    unreleased_locks: FrozenSet[int] = frozenset()

    @property
    def reads(self) -> FrozenSet[int]:
        return frozenset(a.addr for a in self.accesses if a.is_read)

    @property
    def writes(self) -> FrozenSet[int]:
        return frozenset(a.addr for a in self.accesses if a.is_write)


@dataclass
class ProgramAnalysis:
    """The analysis core's output over a whole multi-threaded program."""

    footprints: List[ThreadFootprint]
    #: Addresses used for synchronization by *any* thread (lock words,
    #: spin flags): accesses to these are classified sync everywhere.
    sync_addrs: FrozenSet[int]

    @property
    def num_threads(self) -> int:
        return len(self.footprints)

    @property
    def warnings(self) -> List[str]:
        out: List[str] = []
        for fp in self.footprints:
            out.extend(f"t{fp.thread}: {w}" for w in fp.warnings)
        return out

    def all_accesses(self) -> List[Access]:
        return [a for fp in self.footprints for a in fp.accesses]


def _phase_vector(counts: Dict[int, int]) -> PhaseVector:
    return tuple(sorted(counts.items()))


def _walk_thread(thread: int, name: str, ops: Sequence[Op]) -> ThreadFootprint:
    fp = ThreadFootprint(thread=thread, name=name)
    lockset: List[int] = []  # acquisition order, for imbalance reporting
    barrier_done: Dict[int, int] = {}
    lock_addrs = set()
    spin_addrs = set()
    regs_written: Dict[str, int] = {}

    def access(
        op_index: int,
        kind: OpKind,
        addr: int,
        *,
        read: bool,
        write: bool,
        sync: bool,
        symbolic: bool = False,
    ) -> None:
        fp.accesses.append(
            Access(
                thread=thread,
                op_index=op_index,
                kind=kind,
                addr=addr,
                is_read=read,
                is_write=write,
                is_sync=sync,
                value_symbolic=symbolic,
                lockset=frozenset(lockset),
                barrier_phases=_phase_vector(barrier_done),
            )
        )

    for index, op in enumerate(ops):
        if isinstance(op, Load):
            if op.reg in regs_written:
                fp.warnings.append(
                    f"op {index}: register {op.reg!r} reloaded (previously "
                    f"written at op {regs_written[op.reg]}); final value wins"
                )
            regs_written[op.reg] = index
            access(index, op.kind, op.addr, read=True, write=False, sync=False)
        elif isinstance(op, Store):
            symbolic = isinstance(op.value, (Reg, RegPlus))
            access(
                index, op.kind, op.addr,
                read=False, write=True, sync=False, symbolic=symbolic,
            )
        elif isinstance(op, LockAcquire):
            lock_addrs.add(op.addr)
            if op.addr in lockset:
                fp.warnings.append(
                    f"op {index}: acquire of lock {op.addr:#x} already held "
                    "(self-deadlock at run time)"
                )
            # Test-and-set: the acquire both reads and writes the lock word.
            access(index, op.kind, op.addr, read=True, write=True, sync=True)
            lockset.append(op.addr)
        elif isinstance(op, LockRelease):
            lock_addrs.add(op.addr)
            if op.addr in lockset:
                lockset.remove(op.addr)
            else:
                fp.warnings.append(
                    f"op {index}: release of lock {op.addr:#x} never acquired"
                )
            access(index, op.kind, op.addr, read=False, write=True, sync=True)
        elif isinstance(op, Barrier):
            barrier_done[op.barrier_id] = barrier_done.get(op.barrier_id, 0) + 1
            fp.barrier_counts[op.barrier_id] = barrier_done[op.barrier_id]
        elif isinstance(op, SpinUntil):
            spin_addrs.add(op.addr)
            access(index, op.kind, op.addr, read=True, write=False, sync=True)
        elif isinstance(op, Io):
            # Device space is disjoint from shared memory: no footprint.
            pass
        # Compute and Fence touch no memory.

    if lockset:
        fp.unreleased_locks = frozenset(lockset)
        held = ", ".join(f"{a:#x}" for a in lockset)
        fp.warnings.append(f"program ends holding lock(s) {held}")
    fp.lock_addrs = frozenset(lock_addrs)
    fp.spin_addrs = frozenset(spin_addrs)
    return fp


def analyze_programs(
    programs: Sequence[ThreadProgram],
) -> ProgramAnalysis:
    """Extract per-thread footprints for every static pass.

    Accepts the same ``List[ThreadProgram]`` that :func:`repro.system.run_workload`
    takes, so a workload can be analyzed and simulated from one object.
    """
    footprints = [
        _walk_thread(i, getattr(p, "name", f"t{i}"), list(p))
        for i, p in enumerate(programs)
    ]
    sync_addrs = frozenset().union(
        *(fp.lock_addrs for fp in footprints),
        *(fp.spin_addrs for fp in footprints),
    ) if footprints else frozenset()
    # Accesses were classified per-thread; re-classify against the global
    # sync-address set (a flag written by one thread and spun on by another
    # is sync traffic on both sides).
    for fp in footprints:
        fp.accesses = [
            a if (a.is_sync or a.addr not in sync_addrs)
            else Access(
                thread=a.thread,
                op_index=a.op_index,
                kind=a.kind,
                addr=a.addr,
                is_read=a.is_read,
                is_write=a.is_write,
                is_sync=True,
                value_symbolic=a.value_symbolic,
                lockset=a.lockset,
                barrier_phases=a.barrier_phases,
            )
            for a in fp.accesses
        ]
    return ProgramAnalysis(footprints=footprints, sync_addrs=sync_addrs)
