"""The ``analyze`` CLI subcommand: static analysis without simulation.

Four passes, mirroring the ``chaos`` subcommand's conventions (JSON or
human reports; deterministic output; distinct exit codes):

* ``analyze program`` — static conflict graph + critical cycles +
  chunk-conflict prediction for a litmus test or bundled application;
* ``analyze races`` — lockset/happens-before race classification;
* ``analyze outcomes`` — exhaustive SC-outcome enumeration (litmus-scale);
* ``analyze detlint`` — determinism lint over Python sources;
* ``analyze contracts`` — per-component ordering contracts + composition
  obligation over recorded traces, plus the bounded protocol model
  checker (:mod:`repro.contracts`).

Exit codes: 0 clean, 1 findings (cycles / races / deadlocks / lint
hits), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.conflict_graph import (
    build_conflict_report,
    predict_chunk_conflicts,
)
from repro.analysis.detlint import lint_paths
from repro.analysis.outcomes import (
    EnumerationBudgetError,
    enumerate_sc_outcomes,
)
from repro.analysis.races import detect_races
from repro.analysis.report import (
    conflict_report_payload,
    detlint_payload,
    outcome_payload,
    race_report_payload,
    render_conflict_report,
    render_detlint,
    render_outcomes,
    render_race_report,
)
from repro.contracts.cli import add_contracts_args
from repro.cpu.thread import ThreadProgram
from repro.errors import ProgramError, ReproError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Spacing between litmus variables: one address per cache line's worth
#: of words, matching the dynamic harness's distinct-line placement.
_LITMUS_STRIDE = 0x40


def _litmus_programs(test) -> List[ThreadProgram]:
    """Instantiate a litmus test's threads at fixed, distinct addresses."""
    addrs = {
        var: (i + 1) * _LITMUS_STRIDE for i, var in enumerate(test.variables)
    }
    return [
        ThreadProgram(ops, name=f"t{i}")
        for i, ops in enumerate(test.build(addrs))
    ]


def _resolve_programs(
    args: argparse.Namespace,
) -> List[Tuple[str, List[ThreadProgram], Optional[object]]]:
    """Target selection shared by program/races/outcomes.

    Returns ``(name, programs, litmus_test_or_None)`` triples.
    """
    from repro.verify.litmus import all_litmus_tests

    if args.app is not None:
        from repro.harness.runner import ALL_APPS, build_app_workload
        from repro.params import NAMED_CONFIGS

        if args.app not in ALL_APPS:
            raise ProgramError(f"unknown application {args.app!r}; try `list`")
        config = NAMED_CONFIGS[args.config](seed=args.seed)
        workload = build_app_workload(
            args.app, config, args.instructions, args.seed
        )
        return [(args.app, list(workload.programs), None)]
    tests = all_litmus_tests()
    if args.litmus != "all":
        tests = [t for t in tests if t.name == args.litmus]
        if not tests:
            known = ", ".join(t.name for t in all_litmus_tests())
            raise ProgramError(
                f"unknown litmus test {args.litmus!r} (known: {known})"
            )
    return [(t.name, _litmus_programs(t), t) for t in tests]


def _emit(payloads: List[Dict[str, object]], texts: List[str], as_json: bool) -> None:
    if as_json:
        body = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        print("\n\n".join(texts))


def _cmd_program(args: argparse.Namespace) -> int:
    targets = _resolve_programs(args)
    payloads, texts = [], []
    findings = 0
    for name, programs, __ in targets:
        report = build_conflict_report(programs)
        chunk_conflicts: Sequence = ()
        if args.chunk_size:
            chunk_conflicts = predict_chunk_conflicts(programs, args.chunk_size)
        findings += len(report.cycles)
        payloads.append(
            conflict_report_payload(
                name, report, chunk_conflicts, args.chunk_size
            )
        )
        texts.append(
            render_conflict_report(
                name, report, chunk_conflicts, args.chunk_size
            )
        )
    _emit(payloads, texts, args.json)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _cmd_races(args: argparse.Namespace) -> int:
    targets = _resolve_programs(args)
    payloads, texts = [], []
    races = 0
    for name, programs, __ in targets:
        report = detect_races(programs)
        races += len(report.races)
        payloads.append(race_report_payload(name, report))
        texts.append(render_race_report(name, report))
    _emit(payloads, texts, args.json)
    return EXIT_FINDINGS if races else EXIT_CLEAN


def _cmd_outcomes(args: argparse.Namespace) -> int:
    targets = _resolve_programs(args)
    payloads, texts = [], []
    findings = 0
    for name, programs, test in targets:
        result = enumerate_sc_outcomes(
            programs,
            chunk_size=max(1, args.chunk_size),
            max_states=args.max_states,
        )
        findings += len(result.deadlocks)
        payload = outcome_payload(name, result)
        text = render_outcomes(name, result)
        if test is not None:
            # The enumerated set must exclude the test's forbidden outcome;
            # an SC-forbidden state in the SC-allowed set is a finding.
            bad = [
                s for s in result.final_states if test.forbidden(s.register_map())
            ]
            payload["forbidden_states"] = [s.describe() for s in bad]
            if bad:
                findings += len(bad)
                text += (
                    f"\n  FORBIDDEN outcome enumerated as SC-allowed: {len(bad)}"
                )
            else:
                text += "\n  forbidden outcome correctly excluded"
        payloads.append(payload)
        texts.append(text)
    _emit(payloads, texts, args.json)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _cmd_detlint(args: argparse.Namespace) -> int:
    findings, files_checked = lint_paths(args.paths)
    if files_checked == 0:
        print(f"detlint: no python files under {args.paths}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(detlint_payload(findings, files_checked),
                         indent=2, sort_keys=True))
    else:
        print(render_detlint(findings, files_checked))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def add_analyze_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "analyze",
        help="static analysis: conflicts, races, SC outcomes, determinism lint",
    )
    passes = parser.add_subparsers(dest="analysis", required=True)

    def add_target_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--litmus", default="all",
            help="litmus test name or `all` (default all)",
        )
        p.add_argument("--app", default=None, help="analyze a bundled app instead")
        p.add_argument("--config", default="BSCdypvt",
                       help="configuration for --app workload construction")
        p.add_argument("--instructions", type=int, default=2000,
                       help="instructions per thread for --app (default 2000)")
        p.add_argument("--seed", type=int, default=0, help="workload seed")
        p.add_argument("--json", action="store_true", help="emit JSON")

    p_prog = passes.add_parser(
        "program", help="conflict graph, critical cycles, chunk prediction"
    )
    add_target_args(p_prog)
    p_prog.add_argument(
        "--chunk-size", type=int, default=0,
        help="also predict chunk-pair conflicts at this chunk size",
    )
    p_prog.set_defaults(analyze_func=_cmd_program)

    p_races = passes.add_parser(
        "races", help="lockset + happens-before race classification"
    )
    add_target_args(p_races)
    p_races.set_defaults(analyze_func=_cmd_races)

    p_out = passes.add_parser(
        "outcomes", help="exhaustively enumerate SC-allowed final states"
    )
    add_target_args(p_out)
    p_out.add_argument(
        "--chunk-size", type=int, default=1,
        help="atomicity granularity in instructions (default 1 = full SC)",
    )
    p_out.add_argument(
        "--max-states", type=int, default=500_000,
        help="state exploration budget (default 500000)",
    )
    p_out.set_defaults(analyze_func=_cmd_outcomes)

    p_lint = passes.add_parser(
        "detlint", help="determinism lint over python sources"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories (default src/repro)",
    )
    p_lint.add_argument("--json", action="store_true", help="emit JSON")
    p_lint.set_defaults(analyze_func=_cmd_detlint)

    add_contracts_args(passes)

    parser.set_defaults(func=cmd_analyze)


def cmd_analyze(args: argparse.Namespace) -> int:
    try:
        return args.analyze_func(args)
    except EnumerationBudgetError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (ProgramError, ReproError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return EXIT_USAGE
