"""Static race classification: lockset + happens-before over the op IR.

Every cross-thread conflicting pair found by the conflict-graph pass is
classified as one of

* ``lock-protected`` — both accesses hold a common lock (Eraser-style
  lockset intersection);
* ``barrier-separated`` / ``flag-ordered`` — a happens-before path
  exists between the two ops through barrier generations or a
  post/wait spin-flag pairing (store of the awaited literal value →
  matching :class:`~repro.cpu.isa.SpinUntil`);
* ``sync-traffic`` — both endpoints are themselves synchronization
  accesses (lock words, spin flags): contention, not a race;
* ``data-race`` — none of the above: the program's outcome depends on
  the interleaving, and under BulkSC the pair is a squash generator.

The happens-before graph is static and therefore *approximate* in one
documented direction: a spin edge is added only when some store writes
the exact literal value the spinner waits for.  Symbolic store values
never create ordering, so the pass errs toward *reporting* races (no
false negatives from imagined synchronization).

Each classification carries a precise op-level witness (both accesses
with their locksets and barrier phases) so a report line is actionable
without re-running the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.analysis.conflict_graph import ConflictEdge, _conflict_edges
from repro.analysis.footprint import ProgramAnalysis, analyze_programs
from repro.cpu.isa import Barrier, SpinUntil, Store
from repro.cpu.thread import ThreadProgram

#: Classification labels, in report order.
LOCK_PROTECTED = "lock-protected"
BARRIER_SEPARATED = "barrier-separated"
FLAG_ORDERED = "flag-ordered"
SYNC_TRAFFIC = "sync-traffic"
DATA_RACE = "data-race"


@dataclass(frozen=True)
class RacePair:
    """One classified conflicting access pair."""

    edge: ConflictEdge
    classification: str
    #: Human-readable justification ("common lock 0x40", "path via
    #: barrier 1 generation boundary", ...).
    why: str

    @property
    def is_race(self) -> bool:
        return self.classification == DATA_RACE

    def describe(self) -> str:
        return f"[{self.classification}] {self.edge.describe()} ({self.why})"


@dataclass
class RaceReport:
    """All conflicting pairs of a program, classified."""

    pairs: List[RacePair]
    warnings: List[str] = field(default_factory=list)

    @property
    def races(self) -> List[RacePair]:
        return [p for p in self.pairs if p.is_race]

    @property
    def ok(self) -> bool:
        return not self.races

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for pair in self.pairs:
            out[pair.classification] = out.get(pair.classification, 0) + 1
        return out


def _happens_before(
    programs: Sequence[ThreadProgram],
) -> "nx.DiGraph":
    """Static happens-before: program order + barriers + spin-flag edges.

    Nodes are ``(thread, op_index)`` plus synthetic ``("bar", id, gen)``
    rendezvous nodes.  An edge means "guaranteed ordered before in every
    execution".
    """
    graph = nx.DiGraph()
    spin_waiters: List[Tuple[int, int, int, int]] = []  # (addr, value, t, idx)
    literal_stores: List[Tuple[int, int, int, int]] = []
    for thread, program in enumerate(programs):
        ops = list(program)
        barrier_gen: Dict[int, int] = {}
        for index, op in enumerate(ops):
            node = (thread, index)
            graph.add_node(node)
            if index > 0:
                graph.add_edge((thread, index - 1), node)
            if isinstance(op, Barrier):
                gen = barrier_gen.get(op.barrier_id, 0)
                barrier_gen[op.barrier_id] = gen + 1
                rendezvous = ("bar", op.barrier_id, gen)
                # Arrival: everything up to the barrier op precedes the
                # rendezvous; release: the rendezvous precedes everything
                # after it, in *every* participant.
                graph.add_edge(node, rendezvous)
                if index + 1 < len(ops):
                    graph.add_edge(rendezvous, (thread, index + 1))
            elif isinstance(op, SpinUntil):
                spin_waiters.append((op.addr, op.value, thread, index))
            elif isinstance(op, Store) and isinstance(op.value, int):
                literal_stores.append((op.addr, op.value, thread, index))
    for s_addr, s_value, s_thread, s_index in literal_stores:
        for w_addr, w_value, w_thread, w_index in spin_waiters:
            if s_addr == w_addr and s_value == w_value and s_thread != w_thread:
                graph.add_edge((s_thread, s_index), (w_thread, w_index))
    return graph


def _classify(
    edge: ConflictEdge, hb: "nx.DiGraph"
) -> RacePair:
    a, b = edge.a, edge.b
    if edge.sync:
        return RacePair(
            edge=edge,
            classification=SYNC_TRAFFIC,
            why=f"both endpoints are synchronization accesses to {edge.addr:#x}",
        )
    common = a.lockset & b.lockset
    if common:
        locks = ",".join(f"{addr:#x}" for addr in sorted(common))
        return RacePair(
            edge=edge, classification=LOCK_PROTECTED, why=f"common lock {locks}"
        )
    ordered = None
    if nx.has_path(hb, a.node, b.node):
        ordered = (a, b)
    elif nx.has_path(hb, b.node, a.node):
        ordered = (b, a)
    if ordered is not None:
        first, second = ordered
        phases_differ = dict(first.barrier_phases) != dict(second.barrier_phases)
        if phases_differ:
            return RacePair(
                edge=edge,
                classification=BARRIER_SEPARATED,
                why=(
                    f"t{first.thread}#{first.op_index} happens-before "
                    f"t{second.thread}#{second.op_index} across a barrier "
                    "generation"
                ),
            )
        return RacePair(
            edge=edge,
            classification=FLAG_ORDERED,
            why=(
                f"t{first.thread}#{first.op_index} happens-before "
                f"t{second.thread}#{second.op_index} through a spin-flag "
                "post/wait"
            ),
        )
    return RacePair(
        edge=edge,
        classification=DATA_RACE,
        why="no common lock and no happens-before path in either direction",
    )


def detect_races(
    programs: Sequence[ThreadProgram],
    analysis: ProgramAnalysis = None,
) -> RaceReport:
    """Classify every conflicting access pair of a program."""
    if analysis is None:
        analysis = analyze_programs(programs)
    edges = _conflict_edges(analysis)
    hb = _happens_before(programs)
    pairs = [_classify(edge, hb) for edge in edges]
    order = {
        DATA_RACE: 0,
        FLAG_ORDERED: 1,
        BARRIER_SEPARATED: 2,
        LOCK_PROTECTED: 3,
        SYNC_TRAFFIC: 4,
    }
    pairs.sort(
        key=lambda p: (order[p.classification], p.edge.addr,
                       p.edge.a.node, p.edge.b.node)
    )
    return RaceReport(pairs=pairs, warnings=analysis.warnings)
