"""Exhaustive SC-outcome enumeration for small programs.

A sequentially consistent execution is some interleaving of the
threads' ops into one total order.  For small programs (the litmus
suite, hand-written kernels — ≲4 threads, bounded op counts) the whole
interleaving space fits in memory, so the *set of SC-allowed final
states* is computable exactly: depth-first search over machine states
``(pcs, registers, memory, barrier arrivals)`` with a visited set.

The unit of atomicity is a **chunk** of up to ``chunk_size``
instructions (barriers and I/O force a boundary, mirroring
:mod:`repro.core.chunking`).  ``chunk_size=1`` — the default — is
op-granular interleaving, i.e. the full SC outcome set; any chunked
execution (BulkSC commits whole chunks atomically) can only realize a
*subset* of it.  That containment is the cross-validation contract:
every final state a dynamic run produces must appear in the
``chunk_size=1`` enumeration, no matter where the dynamic chunk
boundaries fell.

States where no thread can step and not every thread has finished
(e.g. a barrier that can never fill, a never-released lock) are
reported as deadlocks rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cpu.isa import (
    Barrier,
    Compute,
    Fence,
    Io,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    SpinUntil,
    Store,
    resolve_operand,
)
from repro.cpu.thread import ThreadProgram
from repro.errors import ProgramError, ReproError

#: Default exploration budget (distinct states).
DEFAULT_MAX_STATES = 500_000
#: The enumerator is meant for litmus-scale programs.
DEFAULT_MAX_THREADS = 4


class EnumerationBudgetError(ReproError):
    """The state space exceeded the exploration budget."""


@dataclass(frozen=True)
class FinalState:
    """One SC-allowed end state of the program."""

    #: Per-thread register files: registers[t] == ((name, value), ...).
    registers: Tuple[Tuple[Tuple[str, int], ...], ...]
    #: Shared memory, touched words only: ((addr, value), ...).
    memory: Tuple[Tuple[int, int], ...]
    #: I/O device images: ((device, last_value), ...).
    devices: Tuple[Tuple[int, int], ...] = ()
    deadlocked: bool = False
    #: Per-thread pc at a deadlock (all-finished for normal termination).
    pcs: Tuple[int, ...] = ()

    def register_map(self) -> Dict[int, Dict[str, int]]:
        """Same shape as ``RunResult.registers``: proc -> name -> value."""
        return {t: dict(regs) for t, regs in enumerate(self.registers)}

    def memory_map(self) -> Dict[int, int]:
        return dict(self.memory)

    def describe(self) -> str:
        regs = "; ".join(
            f"t{t}:{{{', '.join(f'{n}={v}' for n, v in sorted(r))}}}"
            for t, r in enumerate(self.registers)
            if r
        )
        mem = ", ".join(f"{a:#x}={v}" for a, v in self.memory)
        parts = [p for p in (regs, f"mem {{{mem}}}" if mem else "") if p]
        text = "  ".join(parts) if parts else "(empty)"
        if self.deadlocked:
            stuck = ",".join(str(pc) for pc in self.pcs)
            return f"DEADLOCK at pcs [{stuck}]  {text}"
        return text


@dataclass
class EnumerationResult:
    """The enumerated SC outcome set."""

    final_states: List[FinalState]
    deadlocks: List[FinalState]
    states_explored: int
    chunk_size: int

    @property
    def ok(self) -> bool:
        return not self.deadlocks

    def register_states(self) -> List[Dict[int, Dict[str, int]]]:
        return [s.register_map() for s in self.final_states]


# Internal search state ------------------------------------------------

#: (pcs, arrived-flags, per-thread regs, memory, devices)
_State = Tuple[
    Tuple[int, ...],
    Tuple[bool, ...],
    Tuple[Tuple[Tuple[str, int], ...], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, int], ...],
]


class _Machine:
    """Mutable scratch view of one search state."""

    def __init__(self, state: _State):
        pcs, arrived, regs, memory, devices = state
        self.pcs = list(pcs)
        self.arrived = list(arrived)
        self.regs = [dict(r) for r in regs]
        self.memory = dict(memory)
        self.devices = dict(devices)

    def freeze(self) -> _State:
        return (
            tuple(self.pcs),
            tuple(self.arrived),
            tuple(tuple(sorted(r.items())) for r in self.regs),
            tuple(sorted(self.memory.items())),
            tuple(sorted(self.devices.items())),
        )


def _op_enabled(machine: _Machine, thread: int, op: Op) -> bool:
    """Can this op execute right now without blocking?"""
    if isinstance(op, LockAcquire):
        return machine.memory.get(op.addr, 0) == 0
    if isinstance(op, SpinUntil):
        return machine.memory.get(op.addr, 0) == op.value
    if isinstance(op, Barrier):
        # Arrival is always possible; the *advance* past the barrier is
        # what waits. Handled in _step.
        return True
    return True


def _release_barrier_if_full(
    machine: _Machine, programs: Sequence[Sequence[Op]], barrier: Barrier
) -> None:
    """If every participant has arrived at this barrier, release them all."""
    arrived_threads = []
    for t, pc in enumerate(machine.pcs):
        if not machine.arrived[t] or pc >= len(programs[t]):
            continue
        op = programs[t][pc]
        if isinstance(op, Barrier) and op.barrier_id == barrier.barrier_id:
            arrived_threads.append(t)
    if len(arrived_threads) >= barrier.participants:
        for t in arrived_threads:
            machine.arrived[t] = False
            machine.pcs[t] += 1


def _step(
    machine: _Machine, programs: Sequence[Sequence[Op]], thread: int
) -> None:
    """Execute the thread's current op (must be enabled)."""
    op = programs[thread][machine.pcs[thread]]
    if isinstance(op, Load):
        machine.regs[thread][op.reg] = machine.memory.get(op.addr, 0)
        machine.pcs[thread] += 1
    elif isinstance(op, Store):
        value = resolve_operand(op.value, machine.regs[thread])
        machine.memory[op.addr] = value
        machine.pcs[thread] += 1
    elif isinstance(op, LockAcquire):
        machine.memory[op.addr] = 1
        machine.pcs[thread] += 1
    elif isinstance(op, LockRelease):
        machine.memory[op.addr] = 0
        machine.pcs[thread] += 1
    elif isinstance(op, Barrier):
        machine.arrived[thread] = True
        _release_barrier_if_full(machine, programs, op)
    elif isinstance(op, SpinUntil):
        machine.pcs[thread] += 1
    elif isinstance(op, Io):
        machine.devices[op.device] = resolve_operand(
            op.value, machine.regs[thread]
        )
        machine.pcs[thread] += 1
    elif isinstance(op, (Compute, Fence)):
        machine.pcs[thread] += 1
    else:  # pragma: no cover - future op kinds
        raise ProgramError(f"enumerator cannot interpret {op!r}")


def _chunk_stops(op: Op) -> bool:
    """Ops that end a chunk *after* executing (barrier, I/O — §4.1.3)."""
    return isinstance(op, (Barrier, Io))


def _run_chunk(
    machine: _Machine,
    programs: Sequence[Sequence[Op]],
    thread: int,
    chunk_size: int,
) -> bool:
    """Atomically run up to ``chunk_size`` instructions of one thread.

    Returns False when the thread could not make any progress (its next
    op is blocked), in which case ``machine`` is unmodified.
    """
    ops = programs[thread]
    executed = 0
    progressed = False
    while machine.pcs[thread] < len(ops):
        op = ops[machine.pcs[thread]]
        if not _op_enabled(machine, thread, op):
            break
        if isinstance(op, Barrier) and machine.arrived[thread]:
            break  # already arrived; only a full barrier moves the pc
        pc_before = machine.pcs[thread]
        arrived_before = machine.arrived[thread]
        _step(machine, programs, thread)
        if machine.pcs[thread] == pc_before and (
            machine.arrived[thread] == arrived_before
        ):
            break  # no progress possible (defensive)
        progressed = True
        executed += op.instruction_count
        if isinstance(op, Barrier) and machine.pcs[thread] == pc_before:
            break  # arrived and now waiting: chunk cannot continue
        if _chunk_stops(op) or executed >= chunk_size:
            break
    return progressed


def enumerate_sc_outcomes(
    programs: Sequence[ThreadProgram],
    chunk_size: int = 1,
    initial_memory: Optional[Dict[int, int]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    max_threads: int = DEFAULT_MAX_THREADS,
) -> EnumerationResult:
    """Compute the exact set of SC-allowed final states.

    Args:
        programs: The thread programs (same input as ``run_workload``).
        chunk_size: Atomicity granularity in instructions; 1 = full SC.
        initial_memory: Pre-existing word values (default all-zero).
        max_states: Exploration budget; exceeding it raises
            :class:`EnumerationBudgetError` rather than returning a
            silently incomplete answer.
        max_threads: Guard against misuse on large workloads.

    Returns:
        :class:`EnumerationResult` with the deduplicated final states
        (and any reachable deadlock states, reported separately).
    """
    if len(programs) > max_threads:
        raise ProgramError(
            f"outcome enumeration supports at most {max_threads} threads, "
            f"got {len(programs)} (the state space is exponential)"
        )
    op_lists: List[List[Op]] = [list(p) for p in programs]
    initial: _State = (
        tuple(0 for __ in op_lists),
        tuple(False for __ in op_lists),
        tuple(() for __ in op_lists),
        tuple(sorted((initial_memory or {}).items())),
        (),
    )
    visited: Set[_State] = set()
    finals: Set[FinalState] = set()
    deadlocks: Set[FinalState] = set()
    stack: List[_State] = [initial]
    while stack:
        state = stack.pop()
        if state in visited:
            continue
        visited.add(state)
        if len(visited) > max_states:
            raise EnumerationBudgetError(
                f"exceeded {max_states} states at chunk_size={chunk_size}; "
                "shrink the program or raise max_states"
            )
        pcs = state[0]
        if all(pc >= len(ops) for pc, ops in zip(pcs, op_lists)):
            finals.add(
                FinalState(
                    registers=state[2],
                    memory=state[3],
                    devices=state[4],
                    pcs=pcs,
                )
            )
            continue
        any_progress = False
        for thread in range(len(op_lists)):
            if pcs[thread] >= len(op_lists[thread]):
                continue
            machine = _Machine(state)
            if _run_chunk(machine, op_lists, thread, chunk_size):
                any_progress = True
                successor = machine.freeze()
                if successor not in visited:
                    stack.append(successor)
        if not any_progress:
            deadlocks.add(
                FinalState(
                    registers=state[2],
                    memory=state[3],
                    devices=state[4],
                    deadlocked=True,
                    pcs=pcs,
                )
            )
    ordered_finals = sorted(finals, key=lambda s: (s.memory, s.registers))
    ordered_deadlocks = sorted(deadlocks, key=lambda s: (s.pcs, s.memory))
    return EnumerationResult(
        final_states=ordered_finals,
        deadlocks=ordered_deadlocks,
        states_explored=len(visited),
        chunk_size=chunk_size,
    )
