"""Rendering for the ``analyze`` CLI: human-readable and JSON payloads.

Mirrors the ``chaos`` subcommand's conventions: one ``render_*`` and
one ``*_payload`` function per report kind, payloads built purely from
the analysis dataclasses so they serialize with ``json.dumps``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.conflict_graph import ChunkConflict, StaticConflictReport
from repro.analysis.detlint import LintFinding
from repro.analysis.outcomes import EnumerationResult
from repro.analysis.races import RaceReport


# -- conflict graph ----------------------------------------------------

def conflict_report_payload(
    name: str,
    report: StaticConflictReport,
    chunk_conflicts: Sequence[ChunkConflict] = (),
    chunk_size: int = 0,
) -> Dict[str, object]:
    return {
        "program": name,
        "threads": report.num_threads,
        "accesses": report.num_accesses,
        "conflict_edges": [
            {
                "kind": e.kind,
                "addr": e.addr,
                "sync": e.sync,
                "a": {"thread": e.a.thread, "op": e.a.op_index,
                      "op_kind": e.a.kind.value},
                "b": {"thread": e.b.thread, "op": e.b.op_index,
                      "op_kind": e.b.kind.value},
            }
            for e in report.edges
        ],
        "critical_cycles": [
            {
                "nodes": [list(n) for n in c.nodes],
                "witness": [e.describe() for e in c.edges],
                "delay_pairs": [
                    [list(a), list(b)] for a, b in c.delay_pairs
                ],
            }
            for c in report.cycles
        ],
        "cycles_truncated": report.cycles_truncated,
        "delay_set": sorted(
            [list(a), list(b)] for a, b in report.delay_set
        ),
        "hot_addrs": [
            {"addr": addr, "conflicts": count}
            for addr, count in report.hot_addrs
        ],
        "chunk_size": chunk_size,
        "chunk_conflicts": [
            {
                "a": [c.thread_a, c.chunk_a],
                "b": [c.thread_b, c.chunk_b],
                "addrs": list(c.addrs),
            }
            for c in chunk_conflicts
        ],
        "warnings": list(report.warnings),
    }


def render_conflict_report(
    name: str,
    report: StaticConflictReport,
    chunk_conflicts: Sequence[ChunkConflict] = (),
    chunk_size: int = 0,
) -> str:
    lines = [
        f"static conflict analysis: {name}",
        f"  threads {report.num_threads}, memory accesses {report.num_accesses}",
        f"  conflict edges {len(report.edges)} "
        f"({len(report.data_edges)} data, "
        f"{len(report.edges) - len(report.data_edges)} sync)",
    ]
    if report.hot_addrs:
        hottest = ", ".join(
            f"{addr:#x}({count})" for addr, count in report.hot_addrs[:6]
        )
        lines.append(f"  squash hotspots: {hottest}")
    if report.cycles:
        suffix = " (truncated)" if report.cycles_truncated else ""
        lines.append(
            f"  critical cycles {len(report.cycles)}{suffix} — op pairs whose "
            "program order SC must enforce:"
        )
        for cycle in report.cycles[:8]:
            lines.append(cycle.describe())
            lines.append("")
        if len(report.cycles) > 8:
            lines.append(f"  ... and {len(report.cycles) - 8} more")
    else:
        lines.append("  no critical cycles: every interleaving is SC-equivalent")
    if chunk_size:
        lines.append(
            f"  chunk conflicts at chunk_size={chunk_size}: "
            f"{len(chunk_conflicts)}"
        )
        for conflict in list(chunk_conflicts)[:10]:
            lines.append(f"    {conflict.describe()}")
        if len(chunk_conflicts) > 10:
            lines.append(f"    ... and {len(chunk_conflicts) - 10} more")
    for warning in report.warnings:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)


# -- races -------------------------------------------------------------

def race_report_payload(name: str, report: RaceReport) -> Dict[str, object]:
    return {
        "program": name,
        "counts": report.counts(),
        "races": [
            {
                "addr": p.edge.addr,
                "kind": p.edge.kind,
                "a": p.edge.a.describe(),
                "b": p.edge.b.describe(),
                "why": p.why,
            }
            for p in report.races
        ],
        "pairs": [
            {
                "classification": p.classification,
                "addr": p.edge.addr,
                "kind": p.edge.kind,
                "a": p.edge.a.describe(),
                "b": p.edge.b.describe(),
                "why": p.why,
            }
            for p in report.pairs
        ],
        "warnings": list(report.warnings),
        "ok": report.ok,
    }


def render_race_report(name: str, report: RaceReport) -> str:
    counts = report.counts()
    summary = ", ".join(f"{k} {v}" for k, v in sorted(counts.items()))
    lines = [
        f"race analysis: {name}",
        f"  conflicting pairs {len(report.pairs)}"
        + (f" ({summary})" if summary else ""),
    ]
    if report.races:
        lines.append(f"  DATA RACES: {len(report.races)}")
        for pair in report.races:
            lines.append(f"    {pair.edge.describe()}")
            lines.append(f"      {pair.why}")
    else:
        lines.append("  no data races: every conflict is synchronized")
    for pair in report.pairs:
        if not pair.is_race:
            lines.append(f"  [{pair.classification}] {pair.edge.describe()}")
    for warning in report.warnings:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)


# -- outcomes ----------------------------------------------------------

def outcome_payload(name: str, result: EnumerationResult) -> Dict[str, object]:
    return {
        "program": name,
        "chunk_size": result.chunk_size,
        "states_explored": result.states_explored,
        "final_states": [
            {
                "registers": {
                    f"t{t}": dict(regs)
                    for t, regs in enumerate(s.registers)
                },
                "memory": {hex(a): v for a, v in s.memory},
                "devices": {str(d): v for d, v in s.devices},
            }
            for s in result.final_states
        ],
        "deadlocks": [s.describe() for s in result.deadlocks],
        "ok": result.ok,
    }


def render_outcomes(name: str, result: EnumerationResult) -> str:
    lines = [
        f"SC outcome enumeration: {name} (chunk_size={result.chunk_size})",
        f"  states explored {result.states_explored}, "
        f"distinct final states {len(result.final_states)}",
    ]
    for state in result.final_states:
        lines.append(f"    {state.describe()}")
    if result.deadlocks:
        lines.append(f"  DEADLOCKS reachable: {len(result.deadlocks)}")
        for state in result.deadlocks:
            lines.append(f"    {state.describe()}")
    return "\n".join(lines)


# -- detlint -----------------------------------------------------------

def detlint_payload(
    findings: Sequence[LintFinding], files_checked: int
) -> Dict[str, object]:
    return {
        "files_checked": files_checked,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
        "ok": not findings,
    }


def render_detlint(
    findings: Sequence[LintFinding], files_checked: int
) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(finding.describe())
    lines.append(
        f"detlint: {files_checked} files checked, {len(findings)} finding"
        + ("" if len(findings) == 1 else "s")
    )
    return "\n".join(lines)
