"""Static cross-thread conflict graph and Shasha–Snir cycle analysis.

Two accesses *conflict* when they are in different threads, touch the
same word, and at least one writes.  Under BulkSC a conflict between
concurrent chunks is what forces a squash; under plain SC a *cycle*
mixing program-order edges and conflict edges is what makes an
execution order matter at all (Shasha & Snir's critical cycles — the
op pairs on such cycles are exactly the ones whose program order the
hardware must enforce).

This pass is purely static: it never runs the simulator.  Addresses in
the op IR are concrete, so the conflict edge set is **exact** — every
conflict the simulator can dynamically observe between two threads is
an edge here (the cross-validation test in ``tests/test_analysis_outcomes.py``
holds the suite to that).

Cycle witnesses are emitted in the same format as the dynamic checker
(:func:`repro.verify.serializability.format_cycle_witness`), so a
static prediction and a recorded violation diff cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import networkx as nx

from repro.analysis.footprint import Access, ProgramAnalysis, analyze_programs
from repro.cpu.isa import Barrier, Io, Op
from repro.cpu.thread import ThreadProgram
from repro.verify.serializability import CycleWitnessEdge, format_cycle_witness

#: Safety bounds for cycle enumeration: programs are straight-line and
#: small, but simple-cycle counts can still explode on dense graphs.
MAX_CYCLE_LENGTH = 8
MAX_REPORTED_CYCLES = 64


@dataclass(frozen=True)
class ConflictEdge:
    """A conflicting cross-thread access pair."""

    a: Access
    b: Access
    addr: int
    #: "WW", "WR" (a writes, b reads) or "RW" (a reads, b writes).
    kind: str
    #: Both endpoints are synchronization traffic (lock words, spin flags).
    sync: bool

    def describe(self) -> str:
        tag = " [sync]" if self.sync else ""
        return (
            f"{self.kind} @{self.addr:#x}: {self.a.describe()} "
            f"<-> {self.b.describe()}{tag}"
        )


@dataclass(frozen=True)
class CriticalCycle:
    """A Shasha–Snir critical cycle: an SC violation waiting to happen.

    ``nodes`` walks the cycle in order; ``edges`` is the matching
    dynamic-checker-format witness; ``delay_pairs`` are the program-order
    op pairs on the cycle — the orderings the hardware must enforce
    (and, under BulkSC, the chunk boundaries that will conflict if the
    two ops land in concurrently-executing chunks).
    """

    nodes: Tuple[Tuple[int, int], ...]
    edges: Tuple[CycleWitnessEdge, ...]
    delay_pairs: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...]

    def describe(self) -> str:
        return format_cycle_witness(self.edges)


@dataclass
class StaticConflictReport:
    """Everything the conflict-graph pass derives from a program."""

    num_threads: int
    num_accesses: int
    edges: List[ConflictEdge]
    cycles: List[CriticalCycle]
    #: Program-order pairs appearing on some critical cycle (delay set).
    delay_set: Set[Tuple[Tuple[int, int], Tuple[int, int]]]
    #: Addresses involved in at least one non-sync conflict, with counts —
    #: the predicted squash hotspots, hottest first.
    hot_addrs: List[Tuple[int, int]]
    warnings: List[str] = field(default_factory=list)
    #: True when cycle enumeration hit its bound (cycles list incomplete).
    cycles_truncated: bool = False

    @property
    def num_conflict_edges(self) -> int:
        return len(self.edges)

    @property
    def data_edges(self) -> List[ConflictEdge]:
        return [e for e in self.edges if not e.sync]


def _conflict_edges(analysis: ProgramAnalysis) -> List[ConflictEdge]:
    by_addr: Dict[int, List[Access]] = {}
    for access in analysis.all_accesses():
        by_addr.setdefault(access.addr, []).append(access)
    edges: List[ConflictEdge] = []
    for addr in sorted(by_addr):
        group = by_addr[addr]
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if a.thread == b.thread:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if a.is_write and b.is_write:
                    kind = "WW"
                elif a.is_write:
                    kind = "WR"
                else:
                    kind = "RW"
                edges.append(
                    ConflictEdge(
                        a=a, b=b, addr=addr, kind=kind,
                        sync=a.is_sync and b.is_sync,
                    )
                )
    return edges


def _node_label(node: Tuple[int, int]) -> str:
    return f"t{node[0]}#{node[1]}"


def _mixed_graph(
    analysis: ProgramAnalysis, edges: Sequence[ConflictEdge]
) -> "nx.DiGraph":
    """Program-order edges (directed) + conflict edges (both directions)."""
    graph = nx.DiGraph()
    for fp in analysis.footprints:
        previous = None
        for access in fp.accesses:
            graph.add_node(access.node)
            if previous is not None:
                graph.add_edge(previous, access.node, kind="program", addrs=())
            previous = access.node
    for edge in edges:
        for src, dst in ((edge.a.node, edge.b.node), (edge.b.node, edge.a.node)):
            existing = graph.get_edge_data(src, dst)
            if existing is not None and existing["kind"] == "program":
                continue  # program order subsumes the conflict direction
            addrs = tuple(
                sorted(set((existing["addrs"] if existing else ()) + (edge.addr,)))
            )
            graph.add_edge(src, dst, kind="conflict", addrs=addrs)
    return graph


def _critical_cycles(
    analysis: ProgramAnalysis, edges: Sequence[ConflictEdge]
) -> Tuple[List[CriticalCycle], bool]:
    graph = _mixed_graph(analysis, edges)
    cycles: List[CriticalCycle] = []
    seen: Set[FrozenSet[Tuple[int, int]]] = set()
    truncated = False
    for raw in nx.simple_cycles(graph, length_bound=MAX_CYCLE_LENGTH):
        if len(raw) < 2 or len({t for t, __ in raw}) < 2:
            continue
        # Walk the cycle and classify its edges.
        pairs = list(zip(raw, raw[1:] + raw[:1]))
        witness = []
        delay = []
        program_threads = set()
        for src, dst in pairs:
            data = graph[src][dst]
            witness.append(
                CycleWitnessEdge(
                    src=_node_label(src),
                    dst=_node_label(dst),
                    kind=data["kind"],
                    addrs=data["addrs"],
                )
            )
            if data["kind"] == "program":
                delay.append((src, dst))
                program_threads.add(src[0])
        # A critical cycle needs at least one program-order segment —
        # a pure conflict-edge cycle (e.g. the trivial 2-cycle every
        # bidirectional conflict edge induces) constrains nothing.
        # One thread's program edge suffices: coherence shapes like
        # CoRR hinge on reordering within a single reader.
        if not program_threads:
            continue
        key = frozenset(raw)
        if key in seen:
            continue  # same node set reached via a rotated/reflected walk
        seen.add(key)
        cycles.append(
            CriticalCycle(
                nodes=tuple(raw),
                edges=tuple(witness),
                delay_pairs=tuple(delay),
            )
        )
        if len(cycles) >= MAX_REPORTED_CYCLES:
            truncated = True
            break
    cycles.sort(key=lambda c: (len(c.nodes), c.nodes))
    return cycles, truncated


def build_conflict_report(
    programs: Sequence[ThreadProgram],
    analysis: ProgramAnalysis = None,
) -> StaticConflictReport:
    """Run the full conflict-graph pass over a multi-threaded program."""
    if analysis is None:
        analysis = analyze_programs(programs)
    edges = _conflict_edges(analysis)
    cycles, truncated = _critical_cycles(analysis, edges)
    delay_set: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()
    for cycle in cycles:
        delay_set.update(cycle.delay_pairs)
    counts: Dict[int, int] = {}
    for edge in edges:
        if not edge.sync:
            counts[edge.addr] = counts.get(edge.addr, 0) + 1
    hot = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return StaticConflictReport(
        num_threads=analysis.num_threads,
        num_accesses=len(analysis.all_accesses()),
        edges=edges,
        cycles=cycles,
        delay_set=delay_set,
        hot_addrs=hot,
        warnings=analysis.warnings,
        cycles_truncated=truncated,
    )


# ----------------------------------------------------------------------
# Chunk-boundary prediction
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkConflict:
    """Two statically-chunked regions that conflict if concurrent."""

    thread_a: int
    chunk_a: int
    thread_b: int
    chunk_b: int
    addrs: Tuple[int, ...]

    def describe(self) -> str:
        where = ",".join(f"{a:#x}" for a in self.addrs)
        return (
            f"t{self.thread_a}#c{self.chunk_a} x "
            f"t{self.thread_b}#c{self.chunk_b} @{where}"
        )


def _static_chunks(
    ops: Sequence[Op], chunk_size: int
) -> List[Tuple[int, int]]:
    """Chunk boundaries as (start_op, end_op) half-open ranges.

    Mirrors :class:`repro.core.chunking.ChunkingPolicy`: a chunk closes
    once its instruction budget is met, and barriers / I/O force a
    boundary (paper §4.1.3 — neither can execute speculatively inside a
    chunk).
    """
    chunks: List[Tuple[int, int]] = []
    start = 0
    budget = 0
    for index, op in enumerate(ops):
        if isinstance(op, (Barrier, Io)):
            if index > start:
                chunks.append((start, index))
            chunks.append((index, index + 1))
            start = index + 1
            budget = 0
            continue
        budget += op.instruction_count
        if budget >= chunk_size:
            chunks.append((start, index + 1))
            start = index + 1
            budget = 0
    if start < len(ops):
        chunks.append((start, len(ops)))
    return chunks


def predict_chunk_conflicts(
    programs: Sequence[ThreadProgram],
    chunk_size: int,
    analysis: ProgramAnalysis = None,
) -> List[ChunkConflict]:
    """Which chunk pairs will conflict under a given chunking policy.

    Every returned pair is a potential squash if the two chunks execute
    concurrently; disjoint pairs are guaranteed conflict-free no matter
    how commits interleave.
    """
    if analysis is None:
        analysis = analyze_programs(programs)
    per_thread: List[List[Tuple[int, FrozenSet[int], FrozenSet[int]]]] = []
    for thread, program in enumerate(programs):
        footprint = analysis.footprints[thread]
        by_index: Dict[int, Access] = {a.op_index: a for a in footprint.accesses}
        chunks = []
        for chunk_id, (start, end) in enumerate(
            _static_chunks(list(program), chunk_size)
        ):
            reads: Set[int] = set()
            writes: Set[int] = set()
            for op_index in range(start, end):
                access = by_index.get(op_index)
                if access is None:
                    continue
                if access.is_read:
                    reads.add(access.addr)
                if access.is_write:
                    writes.add(access.addr)
            chunks.append((chunk_id, frozenset(reads), frozenset(writes)))
        per_thread.append(chunks)
    conflicts: List[ChunkConflict] = []
    for ta in range(len(per_thread)):
        for tb in range(ta + 1, len(per_thread)):
            for ca, reads_a, writes_a in per_thread[ta]:
                for cb, reads_b, writes_b in per_thread[tb]:
                    clash = (
                        (writes_a & writes_b)
                        | (writes_a & reads_b)
                        | (reads_a & writes_b)
                    )
                    if clash:
                        conflicts.append(
                            ChunkConflict(
                                thread_a=ta, chunk_a=ca,
                                thread_b=tb, chunk_b=cb,
                                addrs=tuple(sorted(clash)),
                            )
                        )
    return conflicts
