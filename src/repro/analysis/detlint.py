"""AST-based determinism lint over the simulator's own sources.

The chaos subsystem certifies that a chaos report is *byte-identical*
across repeats of one command, and every experiment in EXPERIMENTS.md
assumes a seed pins the run.  Both guarantees die silently the moment
nondeterminism leaks into the event ordering, so this lint walks the
source tree for the classic hazards:

======  ==============================================================
rule    hazard
======  ==============================================================
DET001  iteration over a set expression or a set-typed local — order
        depends on ``PYTHONHASHSEED`` for str/object elements
DET002  module-level ``random`` functions (``random.random()``,
        ``random.shuffle``, ...) — unseeded global RNG; use
        ``repro.engine.rng.DeterministicRng`` instead
DET003  wall-clock reads (``time.time``, ``datetime.now``, ...)
        feeding program logic
DET004  entropy sources (``uuid.uuid4``, ``os.urandom``, ``secrets``)
DET005  ordering by object identity (``key=id``)
DET006  unsorted directory listings (``os.listdir``, ``glob.glob``,
        ``Path.iterdir``, ``os.scandir``) used without ``sorted(...)``
DET007  ``.pop()`` on a set-typed local — removes an arbitrary element
======  ==============================================================

DET001/DET007 use a deliberately shallow intra-function inference: a
local name counts as set-typed only when *every* assignment to it in
the enclosing scope is a set display, set comprehension, or
``set(...)``/``frozenset(...)`` call.  Shallow is the point — the lint
must never need to execute the code it checks.

A finding is suppressed by an inline marker **with a justification**::

    for proc in waiting_procs:  # detlint: ok — summed into a counter

Optionally scoped to rules: ``# detlint: ok[DET001] — reason``.  A
marker without a reason does *not* suppress (that would hide exactly
the "it's probably fine" cases the lint exists to challenge).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ok(?:\[(?P<rules>[A-Z0-9, ]+)\])?\s*(?:[-–—:]\s*)?(?P<reason>.*)"
)

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_ENTROPY_CALLS = {
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("os", "urandom"),
}

_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "seed", "betavariate",
    "expovariate", "normalvariate", "triangular",
}

_LISTING_CALLS = {
    ("os", "listdir"),
    ("os", "scandir"),
    ("glob", "glob"),
    ("glob", "iglob"),
}

_SET_CALL_NAMES = {"set", "frozenset"}


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at a precise source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule set (None = all rules), justified only."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if not match.group("reason").strip():
            continue  # a bare "ok" is not a justification
        rules = match.group("rules")
        if rules:
            out[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
        else:
            out[lineno] = None
    return out


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_CALL_NAMES
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra propagates set-ness when either side is a set expr
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _ScopeSets(ast.NodeVisitor):
    """Names in one function scope assigned *only* set expressions."""

    def __init__(self) -> None:
        self.assigned: Dict[str, bool] = {}  # name -> all assignments set-ish

    def _note(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            prior = self.assigned.get(target.id, True)
            self.assigned[target.id] = prior and is_set

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note(target, _is_set_expr(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note(node.target, _is_set_expr(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note(node.target, isinstance(node.op, (ast.BitOr, ast.BitAnd)))
        self.generic_visit(node)

    # Do not descend into nested scopes: their locals are their own.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.findings: List[LintFinding] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._set_names_stack: List[Set[str]] = [set()]

    # -- helpers -------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def _set_names(self) -> Set[str]:
        return self._set_names_stack[-1]

    def _iter_is_setlike(self, node: ast.AST) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name) and node.id in self._set_names():
            return True
        return False

    def _inside_sorted(self, node: ast.AST) -> bool:
        parent = self._parents.get(node)
        while isinstance(
            parent, (ast.Starred, ast.GeneratorExp, ast.comprehension)
        ):
            parent = self._parents.get(parent)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in {"sorted", "len", "sum", "min", "max", "any", "all"}
        )

    # -- scope handling ------------------------------------------------
    def _enter_scope(self, node: ast.AST) -> None:
        scope = _ScopeSets()
        for stmt in getattr(node, "body", []):
            scope.visit(stmt)
        names = {n for n, ok in scope.assigned.items() if ok}
        self._set_names_stack.append(names)
        self.generic_visit(node)
        self._set_names_stack.pop()

    def visit_Module(self, node: ast.Module) -> None:
        self._enter_scope(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    # -- DET001: unordered iteration ----------------------------------
    def _check_iteration(self, iter_node: ast.AST) -> None:
        if self._iter_is_setlike(iter_node) and not self._inside_sorted(iter_node):
            self._add(
                iter_node,
                "DET001",
                "iteration over a set — order is hash-dependent; "
                "wrap in sorted(...) or justify with a suppression",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- call-based rules ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "random" and attr in _RANDOM_FUNCS:
                self._add(
                    node,
                    "DET002",
                    f"module-level random.{attr}() — unseeded global RNG; "
                    "use DeterministicRng (engine.rng) instead",
                )
            elif (base, attr) in _WALLCLOCK_CALLS:
                self._add(
                    node,
                    "DET003",
                    f"wall-clock read {base}.{attr}() feeding program state",
                )
            elif (base, attr) in _ENTROPY_CALLS:
                self._add(node, "DET004", f"entropy source {base}.{attr}()")
            elif (base, attr) in _LISTING_CALLS and not self._inside_sorted(node):
                self._add(
                    node,
                    "DET006",
                    f"{base}.{attr}() order is filesystem-dependent; "
                    "wrap in sorted(...)",
                )
            elif (
                attr == "pop"
                and isinstance(func.value, ast.Name)
                and func.value.id in self._set_names()
                and not node.args
            ):
                self._add(
                    node,
                    "DET007",
                    f"set.pop() on {func.value.id!r} removes an arbitrary "
                    "element",
                )
            elif attr == "iterdir" and not self._inside_sorted(node):
                self._add(
                    node,
                    "DET006",
                    "Path.iterdir() order is filesystem-dependent; "
                    "wrap in sorted(...)",
                )
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._add(
                    node, "DET005", "ordering by object identity (key=id)"
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "secrets":
            self._add(node, "DET004", "import of entropy module `secrets`")
        if node.module == "random":
            names = ", ".join(alias.name for alias in node.names)
            self._add(
                node,
                "DET002",
                f"`from random import {names}` — unseeded global RNG",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "secrets":
                self._add(node, "DET004", "import of entropy module `secrets`")
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one source text; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="DET000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    linter = _Linter(path, tree)
    linter.visit(tree)
    suppressed = _suppressions(source)
    kept = []
    for finding in linter.findings:
        rules = suppressed.get(finding.line, "missing")
        if rules == "missing":
            kept.append(finding)
        elif rules is not None and finding.rule not in rules:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_paths(paths: Sequence[str]) -> Tuple[List[LintFinding], int]:
    """Lint every ``.py`` file under the given files/directories.

    Returns ``(findings, files_checked)``.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    findings: List[LintFinding] = []
    for file in files:
        findings.extend(lint_source(file.read_text(), str(file)))
    return findings, len(files)
