"""Bounded directory storage (paper Section 4.3.3).

A :class:`DirectoryCache` wraps the full-map :class:`DirectoryModule`
storage with a set-associative capacity bound.  The paper prefers
directory caches for BulkSC because they limit signature-expansion false
positives *by construction*: expansion can only select entries that
actually exist.

Displacing an entry is not silent: the displaced line must be invalidated
from every sharer cache and — because running chunks may have accessed it
— the directory builds the line's address into a one-line signature and
sends it to the sharers for bulk disambiguation.  That callback is
supplied by the owning system via ``on_displace``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.coherence.directory import DirectoryEntry, DirectoryModule


class DirectoryCache(DirectoryModule):
    """A :class:`DirectoryModule` with bounded, set-associative storage."""

    def __init__(
        self,
        index: int,
        num_processors: int,
        num_sets: int = 1024,
        associativity: int = 8,
        on_displace: Optional[Callable[[DirectoryEntry], None]] = None,
    ):
        super().__init__(index, num_processors)
        if num_sets & (num_sets - 1):
            raise ValueError("directory cache sets must be a power of two")
        self.num_sets = num_sets
        self.associativity = associativity
        self.on_displace = on_displace
        self._lru_clock = 0
        self._lru: Dict[int, int] = {}
        self._set_population: Dict[int, int] = {}
        self.displacements = 0

    def _set_of(self, line_addr: int) -> int:
        return line_addr & (self.num_sets - 1)

    def _touch(self, line_addr: int) -> None:
        self._lru_clock += 1
        self._lru[line_addr] = self._lru_clock

    def entry(self, line_addr: int) -> DirectoryEntry:
        existing = self._entries.get(line_addr)
        if existing is not None:
            self.lookups += 1
            self._touch(line_addr)
            return existing
        self._make_room(line_addr)
        entry = super().entry(line_addr)
        set_index = self._set_of(line_addr)
        self._set_population[set_index] = self._set_population.get(set_index, 0) + 1
        self._touch(line_addr)
        return entry

    def _make_room(self, line_addr: int) -> None:
        set_index = self._set_of(line_addr)
        if self._set_population.get(set_index, 0) < self.associativity:
            return
        victim_addr = min(
            (
                addr
                for addr in self._entries
                if self._set_of(addr) == set_index
            ),
            key=lambda addr: self._lru[addr],
        )
        victim = DirectoryModule.drop(self, victim_addr)  # keeps buckets in sync
        self._lru.pop(victim_addr, None)
        self._set_population[set_index] -= 1
        self.displacements += 1
        if self.on_displace is not None and victim is not None:
            self.on_displace(victim)

    def drop(self, line_addr: int) -> Optional[DirectoryEntry]:
        entry = super().drop(line_addr)
        if entry is not None:
            self._lru.pop(line_addr, None)
            set_index = self._set_of(line_addr)
            self._set_population[set_index] = max(
                0, self._set_population.get(set_index, 0) - 1
            )
        return entry

    def entries_in_sets(
        self, set_indices: Iterable[int], num_sets: int
    ) -> List[DirectoryEntry]:
        # The directory cache's own geometry defines its decode function
        # (the paper notes δ differs between caches and directories).
        wanted = set(set_indices)
        mask = num_sets - 1
        return [
            entry
            for addr, entry in self._entries.items()
            if (addr & mask) in wanted
        ]

    def entries(self) -> Iterator[DirectoryEntry]:
        return iter(list(self._entries.values()))
