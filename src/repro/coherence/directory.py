"""Full bit-vector directory modules (paper Section 4.3, ref [22]).

Each :class:`DirectoryModule` owns an interleaved slice of the line
address space.  An entry records the sharer set and, when some L1 holds
the line dirty (non-speculatively), the owner.  Entries are allocated on
first reference; the default "full-map" mode never displaces them, while
:class:`~repro.coherence.directory_cache.DirectoryCache` bounds capacity
and triggers the displacement protocol of Section 4.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import ProtocolError


@dataclass
class DirectoryEntry:
    """Sharing state of one line.

    ``dirty`` with ``owner=p`` means processor p's L1 holds the line in a
    modified, *non-speculative* state.  BulkSC can create "false owner"
    states (Table 1 case 2 applied to an aliased line); the protocol
    recovers from these exactly as MESI recovers from a silent Exclusive
    eviction, via :meth:`DirectoryModule.resolve_false_owner`.
    """

    line_addr: int
    sharers: Set[int] = field(default_factory=set)
    dirty: bool = False
    owner: Optional[int] = None

    def is_cached_anywhere(self) -> bool:
        return bool(self.sharers)

    def make_owner(self, proc: int) -> None:
        self.dirty = True
        self.owner = proc
        self.sharers = {proc}

    def clear_owner(self) -> None:
        self.dirty = False
        self.owner = None


class DirectoryModule:
    """One interleaved directory module with unbounded (full-map) storage.

    Entries are additionally bucketed by ``index_sets`` logical sets (the
    decode-δ geometry of the DirBDM), so signature expansion visits only
    the candidate sets instead of scanning the whole structure — the same
    work the hardware's set-indexed lookup does.
    """

    #: Logical set count used for expansion bucketing; must match the
    #: DirBDM's ``directory_sets``.
    INDEX_SETS = 4096

    def __init__(self, index: int, num_processors: int):
        self.index = index
        self.num_processors = num_processors
        self._entries: Dict[int, DirectoryEntry] = {}
        self._buckets: Dict[int, List[DirectoryEntry]] = {}
        self.lookups = 0
        self.allocations = 0

    def _bucket_of(self, line_addr: int) -> int:
        return line_addr & (self.INDEX_SETS - 1)

    # -- storage ------------------------------------------------------------
    def entry(self, line_addr: int) -> DirectoryEntry:
        """Fetch-or-create the entry for ``line_addr``."""
        self.lookups += 1
        entry = self._entries.get(line_addr)
        if entry is None:
            self.allocations += 1
            entry = self._entries[line_addr] = DirectoryEntry(line_addr)
            self._buckets.setdefault(self._bucket_of(line_addr), []).append(entry)
        return entry

    def peek(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Lookup without allocation (used by signature expansion)."""
        return self._entries.get(line_addr)

    def drop(self, line_addr: int) -> Optional[DirectoryEntry]:
        entry = self._entries.pop(line_addr, None)
        if entry is not None:
            bucket = self._buckets.get(self._bucket_of(line_addr))
            if bucket is not None:
                try:
                    bucket.remove(entry)
                except ValueError:  # pragma: no cover - defensive
                    pass
        return entry

    def entries(self) -> Iterator[DirectoryEntry]:
        return iter(self._entries.values())

    def entry_count(self) -> int:
        return len(self._entries)

    def entries_in_sets(
        self, set_indices: Iterable[int], num_sets: int
    ) -> List[DirectoryEntry]:
        """Entries whose line address falls in the given structure sets.

        This is the lookup pattern produced by signature expansion: decode
        (δ) yields candidate sets, then the module examines the entries in
        those sets.  The fast path serves the DirBDM's native geometry
        from the set buckets; other geometries fall back to a scan.
        """
        wanted = set(set_indices)
        if num_sets == self.INDEX_SETS:
            out: List[DirectoryEntry] = []
            for set_index in sorted(wanted):
                out.extend(self._buckets.get(set_index, ()))
            return out
        mask = num_sets - 1
        return [
            entry
            for addr, entry in self._entries.items()
            if (addr & mask) in wanted
        ]

    # -- coherence transitions ---------------------------------------------
    def add_sharer(self, line_addr: int, proc: int) -> DirectoryEntry:
        entry = self.entry(line_addr)
        entry.sharers.add(proc)
        return entry

    def remove_sharer(self, line_addr: int, proc: int) -> None:
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        entry.sharers.discard(proc)
        if entry.owner == proc:
            entry.clear_owner()

    def resolve_false_owner(self, line_addr: int, proc: int) -> None:
        """Handle a writeback request answered with "I don't have it dirty".

        Signature aliasing can mark a processor as owner of a line it never
        wrote (Table 1 case 2 on a false positive).  When the directory
        later asks that "owner" for a writeback and it declines, the
        directory supplies the line from memory and repairs its state —
        the same recovery MESI uses after a silent Exclusive displacement.
        """
        entry = self._entries.get(line_addr)
        if entry is None:
            raise ProtocolError(f"false-owner repair on unknown line {line_addr:#x}")
        if entry.owner == proc:
            entry.clear_owner()
            entry.sharers.discard(proc)
