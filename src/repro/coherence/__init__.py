"""Coherence substrate: directories, the DirBDM, and the MESI controller.

* :mod:`repro.coherence.directory` — full bit-vector directory modules
  (optionally backed by a bounded directory cache).
* :mod:`repro.coherence.dirbdm` — the per-directory Bulk module that
  expands committing W signatures, builds invalidation lists, applies the
  paper's Table 1 case analysis, and read-disables in-flight lines.
* :mod:`repro.coherence.protocol` — the demand-access controller shared by
  every consistency model: L1/L2 lookup, directory transitions, network
  traffic, and latency computation.
"""

from repro.coherence.directory import DirectoryEntry, DirectoryModule
from repro.coherence.directory_cache import DirectoryCache
from repro.coherence.dirbdm import DirBDM, ExpansionOutcome
from repro.coherence.protocol import AccessOutcome, CoherenceController

__all__ = [
    "DirectoryEntry",
    "DirectoryModule",
    "DirectoryCache",
    "DirBDM",
    "ExpansionOutcome",
    "AccessOutcome",
    "CoherenceController",
]
