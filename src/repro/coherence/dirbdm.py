"""The DirBDM: bulk operations at the directory (paper Section 4.3).

When a directory module receives the W signature of a committing chunk it

1. *expands* the signature — decode (δ) selects candidate directory sets,
   the entries in those sets are looked up, and the membership test (∈)
   keeps the possible writers;
2. applies the Table 1 case analysis to each selected entry, building the
   *invalidation list* of processors that must receive W for bulk
   disambiguation and updating ownership;
3. *read-disables* the lines in W until every invalidation is
   acknowledged, bouncing incoming reads that hit them (the conservative
   implementation of the single-sequential-order requirement).

The module keeps precise aliasing statistics (unnecessary lookups and
updates) by comparing against the signature's ground-truth member set —
bookkeeping the simulated hardware never sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.coherence.directory import DirectoryEntry, DirectoryModule
from repro.engine.stats import StatsRegistry
from repro.signatures.base import Signature


@dataclass
class ExpansionOutcome:
    """Result of expanding one committing W signature at one directory."""

    invalidation_list: Set[int] = field(default_factory=set)
    lookups: int = 0
    unnecessary_lookups: int = 0
    updates: int = 0
    unnecessary_updates: int = 0
    #: Lines (from this module's slice) that were actually selected; used
    #: by the commit transaction to know what to invalidate in caches.
    selected_lines: List[int] = field(default_factory=list)


class DirBDM:
    """Bulk disambiguation support attached to one directory module."""

    #: Logical set count of the directory structure, used by decode (δ).
    #: The paper notes the directory uses a different δ than the caches
    #: because its geometry differs.
    def __init__(
        self,
        directory: DirectoryModule,
        directory_sets: int = 4096,
        stats: Optional[StatsRegistry] = None,
    ):
        if directory_sets & (directory_sets - 1):
            raise ValueError("directory_sets must be a power of two")
        self.directory = directory
        self.directory_sets = directory_sets
        self.stats = stats if stats is not None else StatsRegistry("dirbdm")
        # Active read-disables: commit id -> W signature still being made
        # visible.  Incoming reads are membership-tested against each.
        self._read_disabled: Dict[int, Signature] = {}

    # ------------------------------------------------------------------
    # Signature expansion + Table 1 actions
    # ------------------------------------------------------------------
    def expand_commit(
        self,
        w_signature: Signature,
        committing_proc: int,
        true_written_lines: Optional[Set[int]] = None,
    ) -> ExpansionOutcome:
        """Process a committing chunk's W signature (Table 1).

        Args:
            w_signature: The committing chunk's W signature (restricted to
                this module's address slice by the caller or not — entries
                of other modules simply fail the membership test).
            committing_proc: Processor committing the chunk.
            true_written_lines: Ground-truth write set, for aliasing
                statistics only.

        Returns:
            The invalidation list and bookkeeping counts.
        """
        outcome = ExpansionOutcome()
        truth = true_written_lines if true_written_lines is not None else set()
        candidate_sets = w_signature.decode_sets(self.directory_sets)
        if not candidate_sets:
            return outcome
        entries = list(
            self.directory.entries_in_sets(candidate_sets, self.directory_sets)
        )
        hits = w_signature.member_many([entry.line_addr for entry in entries])
        for entry, hit in zip(entries, hits):
            if not hit:
                continue
            outcome.lookups += 1
            truly_written = entry.line_addr in truth
            if not truly_written:
                outcome.unnecessary_lookups += 1
            self._apply_table1(entry, committing_proc, truly_written, outcome)
        self.stats.bump("dirbdm.expansions")
        self.stats.bump("dirbdm.lookups", outcome.lookups)
        self.stats.bump("dirbdm.unnecessary_lookups", outcome.unnecessary_lookups)
        self.stats.bump("dirbdm.updates", outcome.updates)
        self.stats.bump("dirbdm.unnecessary_updates", outcome.unnecessary_updates)
        return outcome

    def _apply_table1(
        self,
        entry: DirectoryEntry,
        committing_proc: int,
        truly_written: bool,
        outcome: ExpansionOutcome,
    ) -> None:
        """One row of the paper's Table 1."""
        committing_in_vector = committing_proc in entry.sharers
        if not entry.dirty and not committing_in_vector:
            # Case 1: false positive — a real writer would already be a
            # sharer (its write miss fetched the line as a read).
            return
        if not entry.dirty and committing_in_vector:
            # Case 2: the committing processor becomes the owner; all other
            # sharers join the invalidation list.
            others = entry.sharers - {committing_proc}
            outcome.invalidation_list |= others
            entry.make_owner(committing_proc)
            outcome.updates += 1
            if not truly_written:
                outcome.unnecessary_updates += 1
            outcome.selected_lines.append(entry.line_addr)
            return
        if entry.dirty and not committing_in_vector:
            # Case 3: false positive — do nothing.
            return
        # Case 4: dirty and committing proc present; if it is the owner
        # there is nothing to do.  (With dirty set the sharer vector holds
        # only the owner.)
        if entry.owner == committing_proc:
            outcome.selected_lines.append(entry.line_addr)
        return

    # ------------------------------------------------------------------
    # Read-disable of in-flight committed lines (Section 4.3.2)
    # ------------------------------------------------------------------
    def disable_reads(self, commit_id: int, w_signature: Signature) -> None:
        """Begin bouncing reads that hit the committing chunk's W.

        Idempotent: a duplicated commit message re-disabling the same
        commit is counted and otherwise ignored, so retried grants under
        fault injection cannot corrupt the disable window.
        """
        if commit_id in self._read_disabled:
            self.stats.bump("dirbdm.duplicate_disables")
            return
        self._read_disabled[commit_id] = w_signature

    def enable_reads(self, commit_id: int) -> None:
        """All invalidation acks arrived; lines become readable again.

        Idempotent against duplicated ack-completion messages.
        """
        if commit_id not in self._read_disabled:
            self.stats.bump("dirbdm.duplicate_enables")
            return
        self._read_disabled.pop(commit_id)

    def is_read_disabled(self, line_addr: int) -> bool:
        """Membership-test an incoming read against every active commit.

        A hit bounces the read (it retries after the commit completes).
        Aliasing can bounce innocent reads; that costs latency, never
        correctness.
        """
        for signature in self._read_disabled.values():
            if signature.member(line_addr):
                self.stats.bump("dirbdm.bounced_reads")
                return True
        return False

    def reconcile_recovery(self, live_commit_ids: Set[int]) -> int:
        """Drop read-disables owned by commits that died with an arbiter.

        After an arbiter crash the recovery manager passes the surviving
        in-flight commit ids; any disable whose commit is gone would
        otherwise bounce reads forever (its ``enable_reads`` will never
        arrive).  Normally a no-op — disables are paired with live
        transactions — so the count is the interesting signal.
        """
        dead = [cid for cid in self._read_disabled if cid not in live_commit_ids]
        for cid in dead:
            self._read_disabled.pop(cid)
        if dead:
            self.stats.bump("dirbdm.recovery_released_disables", len(dead))
        return len(dead)

    @property
    def active_commits(self) -> int:
        return len(self._read_disabled)
