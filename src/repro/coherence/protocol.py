"""Demand-access coherence controller shared by all consistency models.

The controller owns the tag arrays (private L1s, shared inclusive L2),
MSHR files, directory modules, and the network meter.  It answers the two
questions every model asks:

* *How long does this access take?* — from cache state and Table 2
  latencies (L1 2, L2 13, memory 300 cycles, plus network hops for
  three-hop transfers).
* *What coherence actions does it trigger?* — sharer updates,
  invalidations, writebacks, with every message metered by traffic class.

Baselines use :meth:`read` / :meth:`write` (MESI semantics: writes obtain
exclusivity via invalidations).  BulkSC uses :meth:`fetch_for_chunk`, which
is always a *read* request — even for a write miss — because writes gain
visibility only at chunk commit (paper Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.coherence.directory import DirectoryEntry, DirectoryModule
from repro.coherence.directory_cache import DirectoryCache
from repro.engine.stats import Counter, StatsRegistry
from repro.interconnect.network import Network, NodeId
from repro.interconnect.traffic import TrafficClass
from repro.memory.address import AddressMap
from repro.memory.cache import LineState, SetAssocCache
from repro.memory.mshr import MshrFile
from repro.params import SystemConfig


@dataclass
class AccessOutcome:
    """Result of one demand access."""

    latency: float
    level: str  # "l1" | "l2" | "remote" | "mem"
    inserted: bool = True  # False => L1 set overflow (pinned lines)
    #: Portion of the latency that is invalidation/acknowledgement work —
    #: the part an SC store cannot hide behind an exclusive prefetch,
    #: because making the write globally visible must wait for retirement.
    inv_latency: float = 0.0

    @property
    def hit(self) -> bool:
        return self.level == "l1"


class CoherenceController:
    """Caches + directory + network for one simulated machine."""

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[StatsRegistry] = None,
        use_directory_cache: bool = False,
        directory_cache_sets: int = 1024,
        directory_cache_ways: int = 16,
        on_directory_displace: Optional[Callable[[DirectoryEntry], None]] = None,
    ):
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry("coherence")
        mem = config.memory
        self.address_map = AddressMap(mem.words_per_line, config.num_directories)
        if config.network_topology == "mesh":
            from repro.interconnect.mesh import MeshNetwork

            self.network: Network = MeshNetwork(
                rows=config.mesh_rows,
                cols=config.mesh_cols,
                num_processors=config.num_processors,
                hop_cycles=config.network_hop_cycles,
                header_bytes=config.message_header_bytes,
            )
        else:
            self.network = Network(
                hop_cycles=config.network_hop_cycles,
                header_bytes=config.message_header_bytes,
            )
        self.l1s: List[SetAssocCache] = [
            SetAssocCache(mem.l1, name=f"l1.{p}") for p in range(config.num_processors)
        ]
        self.l1_mshrs: List[MshrFile] = [
            MshrFile(mem.l1.mshr_entries, name=f"mshr.l1.{p}")
            for p in range(config.num_processors)
        ]
        self.l2 = SetAssocCache(mem.l2, name="l2")
        self.l2_mshr = MshrFile(mem.l2.mshr_entries, name="mshr.l2")
        if use_directory_cache:
            self.directories: List[DirectoryModule] = [
                DirectoryCache(
                    d,
                    config.num_processors,
                    num_sets=directory_cache_sets,
                    associativity=directory_cache_ways,
                    on_displace=on_directory_displace,
                )
                for d in range(config.num_directories)
            ]
        else:
            self.directories = [
                DirectoryModule(d, config.num_processors)
                for d in range(config.num_directories)
            ]
        self.line_bytes = mem.l1.line_bytes
        self._l1_rt = mem.l1.round_trip_cycles
        self._l2_rt = mem.l2.round_trip_cycles
        self._mem_rt = mem.memory_round_trip_cycles
        #: Optional hook fired as ``(proc, line_addr)`` on every L1
        #: eviction; BulkSC uses it to count speculative-read displacements.
        self.eviction_observer: Optional[Callable[[int, int], None]] = None
        # Per-level fill counters, created lazily so the stats snapshot
        # only ever contains levels that actually fired (same keys the
        # f-string bump produced, minus the per-miss formatting).
        self._fill_counters: Dict[str, Counter] = {}

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def home_directory(self, line_addr: int) -> DirectoryModule:
        return self.directories[self.address_map.directory_of(line_addr)]

    def _proc_node(self, proc: int) -> NodeId:
        return Network.proc(proc)

    def _dir_node(self, line_addr: int) -> NodeId:
        return Network.directory(self.address_map.directory_of(line_addr))

    # ------------------------------------------------------------------
    # Demand reads (all models)
    # ------------------------------------------------------------------
    def read(self, proc: int, line_addr: int, now: float) -> AccessOutcome:
        """A demand read: fetch the line into ``proc``'s L1 shared."""
        l1 = self.l1s[proc]
        if l1.lookup(line_addr) is not None:
            return AccessOutcome(self._l1_rt, "l1")
        return self._fill_from_hierarchy(proc, line_addr, now, exclusive=False)

    # ------------------------------------------------------------------
    # Demand writes (baselines: MESI exclusivity)
    # ------------------------------------------------------------------
    def write(self, proc: int, line_addr: int, now: float) -> AccessOutcome:
        """A demand write under MESI: obtain the line in Modified state."""
        l1 = self.l1s[proc]
        line = l1.lookup(line_addr)
        directory = self.home_directory(line_addr)
        if line is not None:
            if line.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                line.state = LineState.MODIFIED
                directory.entry(line_addr).make_owner(proc)
                return AccessOutcome(self._l1_rt, "l1")
            # Upgrade from Shared: invalidate the other sharers.
            inv_latency = self._invalidate_sharers(proc, line_addr, directory)
            line.state = LineState.MODIFIED
            directory.entry(line_addr).make_owner(proc)
            return AccessOutcome(
                self._l1_rt + inv_latency, "l1", inv_latency=inv_latency
            )
        outcome = self._fill_from_hierarchy(proc, line_addr, now, exclusive=True)
        return outcome

    def prefetch_exclusive(self, proc: int, line_addr: int, now: float) -> None:
        """Exclusive prefetch for a pending store [Gharachorloo'91].

        Brings the line toward the cache ahead of the store's turn; the
        eventual :meth:`write` then hits (unless invalidated in between).
        Metered as demand traffic; latency is off the critical path.
        """
        l1 = self.l1s[proc]
        line = l1.probe(line_addr)
        if line is not None and line.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            return
        self.stats.bump("coherence.exclusive_prefetches")
        self.write(proc, line_addr, now)

    # ------------------------------------------------------------------
    # BulkSC fetch: misses are always read requests
    # ------------------------------------------------------------------
    def fetch_for_chunk(
        self,
        proc: int,
        line_addr: int,
        now: float,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> AccessOutcome:
        """Bring a line into ``proc``'s L1 for speculative chunk execution.

        The directory only ever records the requester as a *sharer*: the
        access is speculative, so the directory cannot mark the requester
        as holding an updated copy (Section 4.3).  ``pinned`` protects
        speculatively-written lines from victimization.
        """
        l1 = self.l1s[proc]
        if l1.lookup(line_addr) is not None:
            return AccessOutcome(self._l1_rt, "l1")
        return self._fill_from_hierarchy(
            proc, line_addr, now, exclusive=False, pinned=pinned
        )

    def would_overflow_l1(
        self, proc: int, line_addr: int, pinned: Callable[[int], bool]
    ) -> bool:
        """True if fetching ``line_addr`` cannot evict anything (all pinned)."""
        l1 = self.l1s[proc]
        return l1.would_overflow(line_addr, pinned)

    # ------------------------------------------------------------------
    # Fill path shared by reads/writes/chunk fetches
    # ------------------------------------------------------------------
    def _fill_from_hierarchy(
        self,
        proc: int,
        line_addr: int,
        now: float,
        exclusive: bool,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> AccessOutcome:
        directory = self.home_directory(line_addr)
        entry = directory.entry(line_addr)
        proc_node = self._proc_node(proc)
        dir_node = self._dir_node(line_addr)
        request_latency = self.network.send(
            proc_node, dir_node, TrafficClass.RD_WR, 0
        )
        # Where does the data come from?
        if entry.dirty and entry.owner is not None and entry.owner != proc:
            level, supply_latency = self._fetch_from_owner(
                proc, line_addr, entry, dir_node
            )
        elif self.l2.lookup(line_addr) is not None:
            level = "l2"
            supply_latency = self._l2_rt
        else:
            level = "mem"
            supply_latency = self._mem_rt
            self._insert_l2(line_addr)
        # Data response back to the requester.
        response_latency = self.network.send(
            dir_node, proc_node, TrafficClass.RD_WR, self.line_bytes
        )
        latency = request_latency + supply_latency + response_latency
        inv_latency = 0.0
        if exclusive:
            inv_latency = self._invalidate_sharers(proc, line_addr, directory)
            latency = max(latency, inv_latency)
            entry.make_owner(proc)
            new_state = LineState.MODIFIED
        else:
            entry.sharers.add(proc)
            new_state = LineState.SHARED
        inserted = self._insert_l1(proc, line_addr, new_state, pinned)
        counter = self._fill_counters.get(level)
        if counter is None:
            counter = self._fill_counters[level] = self.stats.counter(
                f"coherence.fill.{level}"
            )
        counter.value += 1.0
        return AccessOutcome(latency, level, inserted, inv_latency=inv_latency)

    def _fetch_from_owner(
        self,
        proc: int,
        line_addr: int,
        entry: DirectoryEntry,
        dir_node: NodeId,
    ):
        """Three-hop transfer: owner's dirty copy supplies the data."""
        owner = entry.owner
        assert owner is not None
        owner_node = self._proc_node(owner)
        owner_l1 = self.l1s[owner]
        owner_line = owner_l1.probe(line_addr)
        forward_latency = self.network.control(dir_node, owner_node)
        if owner_line is None or not owner_line.dirty:
            # False owner (silent displacement or BulkSC aliasing): the
            # directory repairs its state and memory supplies the data.
            directory = self.home_directory(line_addr)
            directory.resolve_false_owner(line_addr, owner)
            self.stats.bump("coherence.false_owner_repairs")
            return "mem", forward_latency + self._mem_rt
        # Owner writes back and downgrades to Shared.
        owner_line.state = LineState.SHARED
        self._insert_l2(line_addr)
        self.network.send(owner_node, dir_node, TrafficClass.RD_WR, self.line_bytes)
        entry.clear_owner()
        entry.sharers.add(owner)
        self.stats.bump("coherence.cache_to_cache")
        return "remote", forward_latency + self._l1_rt + self._l2_rt

    def _invalidate_sharers(
        self, requesting_proc: int, line_addr: int, directory: DirectoryModule
    ) -> float:
        """Invalidate every other sharer; returns the ack round-trip latency."""
        entry = directory.entry(line_addr)
        others = [p for p in entry.sharers if p != requesting_proc]
        if entry.owner is not None and entry.owner != requesting_proc:
            if entry.owner not in others:
                others.append(entry.owner)
        if not others:
            return 0.0
        dir_node = self._dir_node(line_addr)
        latency = 0.0
        for sharer in others:
            sharer_node = self._proc_node(sharer)
            send = self.network.send(dir_node, sharer_node, TrafficClass.INV, 0)
            victim = self.l1s[sharer].invalidate(line_addr)
            if victim is not None and victim.dirty:
                # Dirty copy flows back with the acknowledgement.
                ack = self.network.send(
                    sharer_node, dir_node, TrafficClass.INV, self.line_bytes
                )
                self._insert_l2(line_addr)
            else:
                ack = self.network.send(sharer_node, dir_node, TrafficClass.INV, 0)
            latency = max(latency, send + ack)
            entry.sharers.discard(sharer)
        entry.clear_owner()
        entry.sharers.add(requesting_proc)
        self.stats.bump("coherence.invalidations", len(others))
        return latency

    # ------------------------------------------------------------------
    # Insert / evict helpers
    # ------------------------------------------------------------------
    def _insert_l1(
        self,
        proc: int,
        line_addr: int,
        state: LineState,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> bool:
        result = self.l1s[proc].insert(line_addr, state, pinned)
        if not result.inserted:
            self.stats.bump("coherence.l1_set_overflows")
            return False
        victim = result.victim
        if victim is not None:
            if self.eviction_observer is not None:
                self.eviction_observer(proc, victim.line_addr)
            self._handle_l1_eviction(proc, victim.line_addr, victim.dirty)
        return True

    def _handle_l1_eviction(self, proc: int, line_addr: int, dirty: bool) -> None:
        # Clean evictions are *silent* (as in MESI): the directory keeps
        # the stale sharer bit.  This conservatism is load-bearing for
        # BulkSC: a processor whose R signature covers a displaced line
        # still receives committing W signatures for it.
        if dirty:
            # Write back through to L2/memory; the directory clears the
            # owner but *keeps* the processor in the sharer vector — a
            # running chunk may hold the line in its R signature, and the
            # sharer bit is what guarantees it still receives committing
            # W signatures for the line.
            self.network.send(
                self._proc_node(proc),
                self._dir_node(line_addr),
                TrafficClass.RD_WR,
                self.line_bytes,
            )
            self._insert_l2(line_addr)
            self.stats.bump("coherence.l1_writebacks")
            entry = self.home_directory(line_addr).peek(line_addr)
            if entry is not None and entry.owner == proc:
                entry.clear_owner()
                entry.sharers.add(proc)
        self.stats.bump("coherence.l1_evictions")

    def _insert_l2(self, line_addr: int) -> None:
        result = self.l2.insert(line_addr, LineState.SHARED)
        victim = result.victim
        if victim is not None:
            # Inclusive L2: evicting a line removes it everywhere.
            self._back_invalidate(victim.line_addr)
            self.stats.bump("coherence.l2_evictions")

    def _back_invalidate(self, line_addr: int) -> None:
        directory = self.home_directory(line_addr)
        entry = directory.peek(line_addr)
        if entry is None:
            return
        for sharer in list(entry.sharers):
            self.network.send(
                self._dir_node(line_addr),
                self._proc_node(sharer),
                TrafficClass.INV,
                0,
            )
            self.l1s[sharer].invalidate(line_addr)
            entry.sharers.discard(sharer)
        entry.clear_owner()

    # ------------------------------------------------------------------
    # Operations used by the BulkSC commit path
    # ------------------------------------------------------------------
    def invalidate_in_cache(self, proc: int, line_addr: int) -> bool:
        """Bulk-invalidate one line from ``proc``'s L1 (no writeback).

        Used when a committed W signature invalidates stale copies and when
        squashes discard speculatively-written lines.  Returns True if the
        line was resident.
        """
        victim = self.l1s[proc].invalidate(line_addr)
        if victim is not None:
            self.home_directory(line_addr).remove_sharer(line_addr, proc)
            return True
        return False

    def mark_dirty_owner(self, proc: int, line_addr: int) -> None:
        """After commit, the committing L1 holds the only, dirty copy."""
        line = self.l1s[proc].probe(line_addr)
        if line is not None:
            line.state = LineState.MODIFIED

    def writeback_line(self, proc: int, line_addr: int) -> None:
        """Write a dirty non-speculative line back to memory (stays Shared)."""
        line = self.l1s[proc].probe(line_addr)
        if line is None or not line.dirty:
            return
        line.state = LineState.SHARED
        self.network.send(
            self._proc_node(proc),
            self._dir_node(line_addr),
            TrafficClass.RD_WR,
            self.line_bytes,
        )
        self._insert_l2(line_addr)
        entry = self.home_directory(line_addr).entry(line_addr)
        if entry.owner == proc:
            entry.clear_owner()
            entry.sharers.add(proc)
        self.stats.bump("coherence.explicit_writebacks")
