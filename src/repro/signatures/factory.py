"""Construction of signatures from configuration."""

from __future__ import annotations

from repro.params import SignatureConfig
from repro.signatures.base import Signature
from repro.signatures.bloom import BloomSignature
from repro.signatures.exact import ExactSignature


class SignatureFactory:
    """Creates signatures matching a :class:`~repro.params.SignatureConfig`.

    Every signature in one simulation comes from one factory, so all
    signatures are mutually compatible (same geometry or same exactness).
    """

    def __init__(self, config: SignatureConfig):
        config.validate()
        self.config = config

    def new(self) -> Signature:
        """A fresh empty signature."""
        if self.config.exact:
            return ExactSignature()
        return BloomSignature(
            self.config.size_bits,
            self.config.num_banks,
            track_exact=self.config.track_exact,
        )

    def from_addresses(self, line_addrs) -> Signature:
        """A signature pre-populated with ``line_addrs``.

        Used, e.g., when a directory-cache displacement builds a one-line
        signature to broadcast for bulk disambiguation (Section 4.3.3).
        """
        signature = self.new()
        signature.insert_all(line_addrs)
        return signature

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "exact" if self.config.exact else "bloom"
        return f"<SignatureFactory {kind} {self.config.size_bits}b>"
