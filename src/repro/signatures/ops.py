"""Functional wrappers over the primitive signature operations.

These mirror Figure 2(b) of the paper.  They are convenience aliases for
the corresponding :class:`~repro.signatures.base.Signature` methods, useful
when code reads better in operator style::

    if not is_empty(intersect(w_commit, r_local)):
        squash()
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.signatures.base import Signature


def intersect(a: Signature, b: Signature) -> Signature:
    """Signature intersection (∩)."""
    return a.intersect(b)


def union(a: Signature, b: Signature) -> Signature:
    """Signature union (∪)."""
    return a.union(b)


def is_empty(signature: Signature) -> bool:
    """Emptiness test (= ∅)."""
    return signature.is_empty()


def member(signature: Signature, line_addr: int) -> bool:
    """Membership test (∈); may report false positives."""
    return signature.member(line_addr)


def insert_many(signature: Signature, line_addrs: Iterable[int]) -> None:
    """Array insert: accumulate a whole address array in one pass."""
    signature.insert_many(line_addrs)


def member_many(signature: Signature, line_addrs: Iterable[int]) -> List[bool]:
    """Vector membership test: one bool per address, same order."""
    return signature.member_many(line_addrs)


def intersects(a: Signature, b: Signature) -> bool:
    """True iff ``a ∩ b`` is (possibly) non-empty."""
    return a.intersects(b)


def disjoint(a: Signature, b: Signature) -> bool:
    """True iff ``a ∩ b`` is provably empty — without allocating ``a ∩ b``.

    The fast-path form of ``is_empty(intersect(a, b))``: packed banks are
    ANDed with early exit on the first all-zero bank (Bloom), or a set
    ``isdisjoint`` (exact), so no intermediate signature or member set is
    ever materialized.
    """
    return a.disjoint(b)


def expand_into_sets(signature: Signature, num_sets: int) -> Set[int]:
    """Signature decoding (δ) into candidate cache-set indices."""
    return signature.decode_sets(num_sets)


def collides_fast(
    w_commit: Signature, r_local: Signature, w_local: Signature
) -> bool:
    """Allocation-free form of the Section 2.2 disambiguation predicate.

    Evaluates ``(W_C ∩ R_L) ∪ (W_C ∩ W_L) ≠ ∅`` purely through the
    :meth:`~repro.signatures.base.Signature.disjoint` kernels, so no
    intermediate signature (or Python-set ``_exact`` intersection) is
    built per check.  This is what the simulator's hot path — the BDM,
    the arbiter decision loop, and the G-arbiter fast-deny — calls.
    """
    if not w_commit.disjoint(r_local):
        return True
    return not w_commit.disjoint(w_local)


def collides(w_commit: Signature, r_local: Signature, w_local: Signature) -> bool:
    """The bulk-disambiguation predicate from Section 2.2.

    A local chunk collides with a committing chunk C when::

        (W_C ∩ R_L) ∪ (W_C ∩ W_L) ≠ ∅

    The W ∩ W term is required because a store updates only part of a cache
    line, so two writers of one line must not commit concurrently.
    Delegates to :func:`collides_fast`, so callers outside the core
    (analysis, verify) do not allocate intermediate signatures either.
    """
    return collides_fast(w_commit, r_local, w_local)
