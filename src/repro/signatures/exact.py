"""Alias-free "magic" signatures (the paper's BSCexact configuration).

An :class:`ExactSignature` stores the precise address set.  It answers every
bulk operation without false positives, which lets experiments isolate how
much of BulkSC's behaviour (squashes, unnecessary invalidations, directory
lookups) is caused by Bloom aliasing rather than true sharing.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from repro.signatures.base import Signature


class ExactSignature(Signature):
    """A signature that is simply the set of inserted line addresses."""

    __slots__ = ("_members",)

    def __init__(self) -> None:
        self._members: Set[int] = set()

    def _check_compatible(self, other: Signature) -> "ExactSignature":
        if not isinstance(other, ExactSignature):
            raise TypeError(f"cannot combine ExactSignature with {type(other).__name__}")
        return other

    # -- mutation -----------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        self._members.add(line_addr)

    def clear(self) -> None:
        self._members.clear()

    def insert_many(self, line_addrs: Iterable[int]) -> None:
        self._members.update(line_addrs)

    def member_many(self, line_addrs: Iterable[int]) -> List[bool]:
        members = self._members
        return [addr in members for addr in line_addrs]

    def filter_members(self, line_addrs: Iterable[int]) -> List[int]:
        members = self._members
        return [addr for addr in line_addrs if addr in members]

    def union_update(self, other: Signature) -> None:
        self._members |= self._check_compatible(other)._members

    # -- functional operations ------------------------------------------------
    def intersect(self, other: Signature) -> "ExactSignature":
        out = ExactSignature()
        out._members = self._members & self._check_compatible(other)._members
        return out

    def union(self, other: Signature) -> "ExactSignature":
        out = ExactSignature()
        out._members = self._members | self._check_compatible(other)._members
        return out

    def is_empty(self) -> bool:
        return not self._members

    def disjoint(self, other: Signature) -> bool:
        """Allocation-free emptiness of the intersection (no new signature)."""
        return self._members.isdisjoint(self._check_compatible(other)._members)

    def member(self, line_addr: int) -> bool:
        return line_addr in self._members

    def decode_sets(self, num_sets: int) -> Set[int]:
        mask = num_sets - 1
        return {addr & mask for addr in self._members}

    def copy(self) -> "ExactSignature":
        out = ExactSignature()
        out._members = set(self._members)
        return out

    def empty_like(self) -> "ExactSignature":
        return ExactSignature()

    # -- introspection -----------------------------------------------------------
    def exact_members(self) -> FrozenSet[int]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ExactSignature n={len(self._members)}>"
