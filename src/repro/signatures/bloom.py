"""Banked Bloom-filter signatures (paper Figure 2a, organization as in Bulk).

The hardware *permutes* the bits of each line address and uses disjoint
bit-fields of the permuted value to index independent banks of a bit
array.  We model the permutation as a stride-``num_banks`` bit
interleave: bank *i* is indexed by address bits ``i, i+B, i+2B, ...``
(B = number of banks).  This is the property that gives Bulk signatures
their characteristic behaviour, which the paper's evaluation depends on:

* **Spatial locality is nearly alias-free.**  Two chunks working in
  different memory regions differ in some high address bit; that bit
  lands in one bank's field, making the two chunks' index sets in that
  bank *disjoint* — the bank AND is zero and the intersection is provably
  empty.  This is why ocean's dense partitioned accesses barely alias.
* **Scattered accesses saturate.**  A radix-style permutation scatter
  sets bits across every bank's space, so intersections with anything
  look non-empty — reproducing radix's pathological squash rate.

A bank with *no* bits set proves the encoded set is empty, so the
emptiness test after an intersection is "any bank is all-zero" — the
same circuit the BDM uses.

Decode (δ) reconstructs candidate cache sets by projecting each bank's
set bit positions onto the address bits that form the cache index and
intersecting the per-bank constraints — without touching the cache.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.signatures.base import Signature

#: Address bits covered by the bit-interleave before folding wraps around.
_FOLD_BITS = 36

#: Memoized per-geometry index tuples: (num_banks, index_bits, line) -> tuple.
#: Line addresses repeat constantly (pin checks, membership tests), so this
#: is a large win for simulation speed; footprints bound its size.
_INDEX_CACHE = {}


class BloomSignature(Signature):
    """A ``num_banks``-banked, bit-field-indexed Bloom filter."""

    __slots__ = ("num_banks", "bits_per_bank", "_index_bits", "_banks", "_exact")

    def __init__(self, size_bits: int = 2048, num_banks: int = 4):
        if size_bits % num_banks:
            raise ValueError("size_bits must divide evenly into banks")
        self.num_banks = num_banks
        self.bits_per_bank = size_bits // num_banks
        if self.bits_per_bank & (self.bits_per_bank - 1):
            raise ValueError("bits per bank must be a power of two")
        self._index_bits = self.bits_per_bank.bit_length() - 1
        self._banks: List[int] = [0] * num_banks
        # Simulator-only ground truth for aliasing statistics.
        self._exact: Set[int] = set()

    # -- hashing ---------------------------------------------------------
    def _fold(self, line_addr: int) -> int:
        """Fold addresses wider than the interleave back into range."""
        folded = line_addr & ((1 << _FOLD_BITS) - 1)
        extra = line_addr >> _FOLD_BITS
        while extra:
            folded ^= extra & ((1 << _FOLD_BITS) - 1)
            extra >>= _FOLD_BITS
        return folded

    def _bank_indices(self, line_addr: int) -> tuple:
        """Per-bank bit indices for ``line_addr`` (memoized)."""
        key = (self.num_banks, self._index_bits, line_addr)
        cached = _INDEX_CACHE.get(key)
        if cached is not None:
            return cached
        addr = self._fold(line_addr)
        banks = self.num_banks
        indices = []
        for bank in range(banks):
            index = 0
            for j in range(self._index_bits):
                index |= ((addr >> (bank + banks * j)) & 1) << j
            indices.append(index)
        result = tuple(indices)
        _INDEX_CACHE[key] = result
        return result

    def _bank_index(self, bank: int, line_addr: int) -> int:
        """Gather address bits ``bank, bank+B, bank+2B, ...`` into an index."""
        return self._bank_indices(line_addr)[bank]

    # -- geometry helpers ----------------------------------------------------
    @property
    def size_bits(self) -> int:
        return self.bits_per_bank * self.num_banks

    def _check_compatible(self, other: Signature) -> "BloomSignature":
        if not isinstance(other, BloomSignature):
            raise TypeError(f"cannot combine BloomSignature with {type(other).__name__}")
        if (
            other.num_banks != self.num_banks
            or other.bits_per_bank != self.bits_per_bank
        ):
            raise TypeError("signature geometries differ")
        return other

    # -- mutation -------------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        indices = self._bank_indices(line_addr)
        for bank in range(self.num_banks):
            self._banks[bank] |= 1 << indices[bank]
        self._exact.add(line_addr)

    def clear(self) -> None:
        for bank in range(self.num_banks):
            self._banks[bank] = 0
        self._exact.clear()

    def union_update(self, other: Signature) -> None:
        o = self._check_compatible(other)
        for bank in range(self.num_banks):
            self._banks[bank] |= o._banks[bank]
        self._exact |= o._exact

    # -- functional operations -------------------------------------------------
    def intersect(self, other: Signature) -> "BloomSignature":
        o = self._check_compatible(other)
        out = BloomSignature(self.size_bits, self.num_banks)
        for bank in range(self.num_banks):
            out._banks[bank] = self._banks[bank] & o._banks[bank]
        out._exact = self._exact & o._exact
        return out

    def union(self, other: Signature) -> "BloomSignature":
        o = self._check_compatible(other)
        out = BloomSignature(self.size_bits, self.num_banks)
        for bank in range(self.num_banks):
            out._banks[bank] = self._banks[bank] | o._banks[bank]
        out._exact = self._exact | o._exact
        return out

    def is_empty(self) -> bool:
        # An address sets one bit in *every* bank, so an all-zero bank
        # proves the encoded set is empty.
        return any(bank_bits == 0 for bank_bits in self._banks)

    def member(self, line_addr: int) -> bool:
        indices = self._bank_indices(line_addr)
        for bank in range(self.num_banks):
            if not (self._banks[bank] >> indices[bank]) & 1:
                return False
        return True

    # -- decode (δ) --------------------------------------------------------------
    def decode_sets(self, num_sets: int) -> Set[int]:
        """Candidate cache sets, reconstructed from the bank bit-fields.

        The cache set index is the low ``log2(num_sets)`` line-address
        bits.  Bank *i* constrains the address bits ``i, i+B, ...``; a set
        index is a candidate iff, for every bank, some set bit in that
        bank projects onto the same values for the index bits the bank
        covers.
        """
        if self.is_empty():
            return set()
        set_bits = num_sets.bit_length() - 1
        if set_bits == 0:
            return {0}
        # For each bank, the projections (onto its covered set-index bits)
        # that are present among its set bit positions.
        bank_projections: List[Set[int]] = []
        bank_positions: List[List[int]] = []
        for bank in range(self.num_banks):
            # Set-index bit positions covered by this bank: address bit
            # b = bank + B*j with b < set_bits; within the bank's index,
            # that address bit is index bit j.
            positions = [
                (b, (b - bank) // self.num_banks)
                for b in range(bank, set_bits, self.num_banks)
            ]
            bank_positions.append(positions)
            if not positions:
                bank_projections.append(set())
                continue
            seen: Set[int] = set()
            bits = self._banks[bank]
            index = 0
            while bits:
                if bits & 1:
                    projection = 0
                    for __, j in positions:
                        projection = (projection << 1) | ((index >> j) & 1)
                    seen.add(projection)
                bits >>= 1
                index += 1
            bank_projections.append(seen)
        candidates: Set[int] = set()
        for set_index in range(num_sets):
            ok = True
            for bank in range(self.num_banks):
                positions = bank_positions[bank]
                if not positions:
                    continue
                projection = 0
                for b, __ in positions:
                    projection = (projection << 1) | ((set_index >> b) & 1)
                if projection not in bank_projections[bank]:
                    ok = False
                    break
            if ok:
                candidates.add(set_index)
        return candidates

    def copy(self) -> "BloomSignature":
        out = BloomSignature(self.size_bits, self.num_banks)
        out._banks = list(self._banks)
        out._exact = set(self._exact)
        return out

    def empty_like(self) -> "BloomSignature":
        return BloomSignature(self.size_bits, self.num_banks)

    # -- introspection -----------------------------------------------------------
    def exact_members(self) -> FrozenSet[int]:
        return frozenset(self._exact)

    def popcount(self) -> int:
        """Total number of set bits; a pollution measure."""
        return sum(bin(bank_bits).count("1") for bank_bits in self._banks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BloomSignature banks={self.num_banks}x{self.bits_per_bank} "
            f"pop={self.popcount()} true={len(self._exact)}>"
        )
