"""Banked Bloom-filter signatures (paper Figure 2a, organization as in Bulk).

The hardware *permutes* the bits of each line address and uses disjoint
bit-fields of the permuted value to index independent banks of a bit
array.  We model the permutation as a stride-``num_banks`` bit
interleave: bank *i* is indexed by address bits ``i, i+B, i+2B, ...``
(B = number of banks).  This is the property that gives Bulk signatures
their characteristic behaviour, which the paper's evaluation depends on:

* **Spatial locality is nearly alias-free.**  Two chunks working in
  different memory regions differ in some high address bit; that bit
  lands in one bank's field, making the two chunks' index sets in that
  bank *disjoint* — the bank AND is zero and the intersection is provably
  empty.  This is why ocean's dense partitioned accesses barely alias.
* **Scattered accesses saturate.**  A radix-style permutation scatter
  sets bits across every bank's space, so intersections with anything
  look non-empty — reproducing radix's pathological squash rate.

A bank with *no* bits set proves the encoded set is empty, so the
emptiness test after an intersection is "any bank is all-zero" — the
same circuit the BDM uses.

Decode (δ) reconstructs candidate cache sets by projecting each bank's
set bit positions onto the address bits that form the cache index and
intersecting the per-bank constraints — without touching the cache.

Representation
--------------
All banks live in **one packed Python int**: bank *i* occupies bits
``[i * bits_per_bank, (i + 1) * bits_per_bank)``.  Because the banks are
bit-aligned, intersection and union of two signatures are single ``&`` /
``|`` operations on the packed words — the constant-time bulk circuits of
Figure 2(b) — and each address contributes one precomputed *mask* (one
bit per bank) so insert and membership are one OR / one AND-compare.
:meth:`disjoint` is the allocation-free disambiguation kernel: it ANDs
the packed words and early-exits on the first all-zero bank, never
materializing an intermediate signature.

The ``_exact`` ground-truth mirror (a Python set shadowing every insert,
used only for aliasing statistics) is **opt-in**: signatures built by a
:class:`~repro.signatures.factory.SignatureFactory` carry bits only
unless the configuration asks for the mirror, so default simulations pay
no per-insert set maintenance.  Directly constructed signatures keep the
mirror on for unit tests and interactive use.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.signatures.base import Signature

#: Address bits covered by the bit-interleave before folding wraps around.
_FOLD_BITS = 36


class IndexCache:
    """A capped LRU of per-geometry address hash results.

    Line addresses repeat constantly (pin checks, membership tests, chunk
    accumulation), so memoizing the bit-gather per ``(geometry, address)``
    is a large simulation-speed win.  The cache is module-global — the
    hash is pure — but **bounded**: long sweeps touch millions of
    distinct (config, app, seed) addresses, and an unbounded dict grows
    without limit across a process-long campaign.  Hit/miss/eviction
    counters are exported into each run's stats registry by
    :class:`repro.system.Machine`.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("index cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Tuple[int, int, int], Tuple[int, Tuple[int, ...]]]" = (
            OrderedDict()
        )

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            # No move_to_end: FIFO-ish eviction loses a little hit rate
            # at the bound but halves the cost of the (dominant) hit
            # path, and evictions only ever cost recomputation.
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, key, value) -> None:
        entries = self._entries
        entries[key] = value
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def resize(self, capacity: int) -> None:
        """Change the bound; evicts LRU entries if shrinking."""
        if capacity < 1:
            raise ValueError("index cache capacity must be positive")
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }


#: Memoized per-geometry hash results:
#: (num_banks, index_bits, line) -> (packed insert mask, per-bank indices).
INDEX_CACHE = IndexCache()


class BloomSignature(Signature):
    """A ``num_banks``-banked, bit-field-indexed Bloom filter."""

    __slots__ = (
        "num_banks",
        "bits_per_bank",
        "_index_bits",
        "_bank_mask",
        "_bits",
        "_exact",
    )

    def __init__(
        self, size_bits: int = 2048, num_banks: int = 4, track_exact: bool = True
    ):
        if size_bits % num_banks:
            raise ValueError("size_bits must divide evenly into banks")
        self.num_banks = num_banks
        self.bits_per_bank = size_bits // num_banks
        if self.bits_per_bank & (self.bits_per_bank - 1):
            raise ValueError("bits per bank must be a power of two")
        self._index_bits = self.bits_per_bank.bit_length() - 1
        self._bank_mask = (1 << self.bits_per_bank) - 1
        # All banks packed into one int (bank i at bit offset i*bits_per_bank).
        self._bits = 0
        # Simulator-only ground truth for aliasing statistics (opt-in).
        self._exact: Optional[Set[int]] = set() if track_exact else None

    # -- hashing ---------------------------------------------------------
    def _fold(self, line_addr: int) -> int:
        """Fold addresses wider than the interleave back into range."""
        folded = line_addr & ((1 << _FOLD_BITS) - 1)
        extra = line_addr >> _FOLD_BITS
        while extra:
            folded ^= extra & ((1 << _FOLD_BITS) - 1)
            extra >>= _FOLD_BITS
        return folded

    def _hash(self, line_addr: int) -> Tuple[int, Tuple[int, ...]]:
        """(packed one-bit-per-bank mask, per-bank indices) — memoized."""
        key = (self.num_banks, self._index_bits, line_addr)
        cached = INDEX_CACHE.get(key)
        if cached is not None:
            return cached
        addr = self._fold(line_addr)
        banks = self.num_banks
        bpb = self.bits_per_bank
        indices = []
        mask = 0
        for bank in range(banks):
            index = 0
            for j in range(self._index_bits):
                index |= ((addr >> (bank + banks * j)) & 1) << j
            indices.append(index)
            mask |= 1 << (bank * bpb + index)
        result = (mask, tuple(indices))
        INDEX_CACHE.put(key, result)
        return result

    def _bank_indices(self, line_addr: int) -> Tuple[int, ...]:
        """Per-bank bit indices for ``line_addr`` (memoized)."""
        return self._hash(line_addr)[1]

    def _bank_index(self, bank: int, line_addr: int) -> int:
        """Gather address bits ``bank, bank+B, bank+2B, ...`` into an index."""
        return self._hash(line_addr)[1][bank]

    # -- geometry helpers ----------------------------------------------------
    @property
    def size_bits(self) -> int:
        return self.bits_per_bank * self.num_banks

    @property
    def tracks_exact(self) -> bool:
        return self._exact is not None

    def bank_bits(self, bank: int) -> int:
        """The raw bit array of one bank."""
        return (self._bits >> (bank * self.bits_per_bank)) & self._bank_mask

    def _check_compatible(self, other: Signature) -> "BloomSignature":
        if not isinstance(other, BloomSignature):
            raise TypeError(f"cannot combine BloomSignature with {type(other).__name__}")
        if (
            other.num_banks != self.num_banks
            or other.bits_per_bank != self.bits_per_bank
        ):
            raise TypeError("signature geometries differ")
        return other

    # -- mutation -------------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        self._bits |= self._hash(line_addr)[0]
        if self._exact is not None:
            self._exact.add(line_addr)

    def masks_of(self, line_addrs: Iterable[int]) -> int:
        """Combined packed insert mask of a whole address array.

        One pass over the (memoized) per-address hashes; the result is the
        exact bit image the array would leave in an empty signature, so
        ``sig._bits |= sig.masks_of(addrs)`` is the array insert and
        ``(sig._bits & mask) == mask`` tests any single-address mask.
        This is the kernel behind :meth:`insert_many` and the batched
        interpreter's per-chunk signature construction.
        """
        bits = 0
        hash_ = self._hash
        for addr in line_addrs:
            bits |= hash_(addr)[0]
        return bits

    def insert_many(self, line_addrs: Iterable[int]) -> None:
        addrs = line_addrs if isinstance(line_addrs, (list, tuple)) else list(line_addrs)
        self._bits |= self.masks_of(addrs)
        if self._exact is not None:
            self._exact.update(addrs)

    def member_many(self, line_addrs: Iterable[int]) -> List[bool]:
        bits = self._bits
        hash_ = self._hash
        out: List[bool] = []
        for addr in line_addrs:
            mask = hash_(addr)[0]
            out.append((bits & mask) == mask)
        return out

    def filter_members(self, line_addrs: Iterable[int]) -> List[int]:
        bits = self._bits
        hash_ = self._hash
        out: List[int] = []
        for addr in line_addrs:
            mask = hash_(addr)[0]
            if (bits & mask) == mask:
                out.append(addr)
        return out

    def clear(self) -> None:
        self._bits = 0
        if self._exact is not None:
            self._exact.clear()

    def union_update(self, other: Signature) -> None:
        o = self._check_compatible(other)
        self._bits |= o._bits
        if self._exact is not None:
            if o._exact is not None:
                self._exact |= o._exact
            else:
                # The mirror can no longer be ground truth; drop it rather
                # than report a false subset.
                self._exact = None

    # -- functional operations -------------------------------------------------
    def _derived(self, bits: int, exact: Optional[Set[int]]) -> "BloomSignature":
        out = BloomSignature(self.size_bits, self.num_banks, track_exact=False)
        out._bits = bits
        out._exact = exact
        return out

    def intersect(self, other: Signature) -> "BloomSignature":
        o = self._check_compatible(other)
        exact = (
            self._exact & o._exact
            if self._exact is not None and o._exact is not None
            else None
        )
        return self._derived(self._bits & o._bits, exact)

    def union(self, other: Signature) -> "BloomSignature":
        o = self._check_compatible(other)
        exact = (
            self._exact | o._exact
            if self._exact is not None and o._exact is not None
            else None
        )
        return self._derived(self._bits | o._bits, exact)

    def is_empty(self) -> bool:
        # An address sets one bit in *every* bank, so an all-zero bank
        # proves the encoded set is empty.
        bits = self._bits
        if not bits:
            return True
        bpb = self.bits_per_bank
        mask = self._bank_mask
        for __ in range(self.num_banks):
            if not bits & mask:
                return True
            bits >>= bpb
        return False

    def disjoint(self, other: Signature) -> bool:
        """Allocation-free ``(self ∩ other) = ∅`` (the BDM/arbiter kernel).

        ANDs the packed banks and early-exits on the first all-zero bank
        — the provably-empty case — without building an intermediate
        signature or touching the exact mirrors.
        """
        o = self._check_compatible(other)
        inter = self._bits & o._bits
        if not inter:
            return True
        bpb = self.bits_per_bank
        mask = self._bank_mask
        for __ in range(self.num_banks):
            if not inter & mask:
                return True
            inter >>= bpb
        return False

    def member(self, line_addr: int) -> bool:
        mask = self._hash(line_addr)[0]
        return (self._bits & mask) == mask

    # -- decode (δ) --------------------------------------------------------------
    def decode_sets(self, num_sets: int) -> Set[int]:
        """Candidate cache sets, reconstructed from the bank bit-fields.

        The cache set index is the low ``log2(num_sets)`` line-address
        bits.  Bank *i* constrains the address bits ``i, i+B, ...``; each
        set-index bit therefore belongs to exactly one bank, so the
        candidates are the cartesian product of every bank's observed
        projections, scattered back onto the set-index bits — no scan of
        the ``num_sets`` space.
        """
        if self.is_empty():
            return set()
        set_bits = num_sets.bit_length() - 1
        if set_bits == 0:
            return {0}
        banks = self.num_banks
        candidates: List[int] = [0]
        for bank in range(banks):
            # Set-index bit positions covered by this bank: address bit
            # b = bank + B*j with b < set_bits; within the bank's index,
            # that address bit is index bit j.
            positions = [
                (b, (b - bank) // banks) for b in range(bank, set_bits, banks)
            ]
            if not positions:
                continue
            # Scatter each observed bank index onto the set-index bits the
            # bank covers; distinct indices can project onto the same value.
            projections: Set[int] = set()
            bits = self.bank_bits(bank)
            while bits:
                low = bits & -bits
                bits ^= low
                index = low.bit_length() - 1
                value = 0
                for b, j in positions:
                    value |= ((index >> j) & 1) << b
                projections.add(value)
            if not projections:
                return set()
            candidates = [
                base | value for base in candidates for value in sorted(projections)
            ]
        return set(candidates)

    def copy(self) -> "BloomSignature":
        return self._derived(
            self._bits, set(self._exact) if self._exact is not None else None
        )

    def empty_like(self) -> "BloomSignature":
        return BloomSignature(
            self.size_bits, self.num_banks, track_exact=self.tracks_exact
        )

    # -- introspection -----------------------------------------------------------
    def exact_members(self) -> FrozenSet[int]:
        if self._exact is None:
            raise RuntimeError(
                "exact mirror disabled (track_exact=False); ground truth is "
                "only available in verify/stats modes"
            )
        return frozenset(self._exact)

    def popcount(self) -> int:
        """Total number of set bits; a pollution measure."""
        return bin(self._bits).count("1")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        true = len(self._exact) if self._exact is not None else "off"
        return (
            f"<BloomSignature banks={self.num_banks}x{self.bits_per_bank} "
            f"pop={self.popcount()} true={true}>"
        )
