"""Common interface for address signatures."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Set


class Signature(ABC):
    """A superset encoding of a set of cache-line addresses.

    Mutating methods (:meth:`insert`, :meth:`clear`, :meth:`union_update`)
    are used while a chunk accumulates accesses; the functional operations
    (:meth:`intersect`, :meth:`union`) return new signatures and model the
    BDM's combinational signature units.

    Subclasses must be mutually compatible only with instances of the same
    concrete type and geometry; mixing Bloom and exact signatures is a
    programming error and raises ``TypeError``.
    """

    __slots__ = ()

    # -- mutation -----------------------------------------------------------
    @abstractmethod
    def insert(self, line_addr: int) -> None:
        """Accumulate one line address."""

    @abstractmethod
    def clear(self) -> None:
        """Reset to the empty signature."""

    def insert_all(self, line_addrs: Iterable[int]) -> None:
        self.insert_many(line_addrs)

    # -- array operations -----------------------------------------------------
    # Whole-address-array forms of insert/member.  The base versions are
    # plain loops; concrete signatures override them with one-pass kernels
    # (a single mask OR for Bloom, set ops for exact) so batch producers —
    # the chunk interpreter, bulk invalidation, commit expansion — never
    # pay per-address dispatch.
    def insert_many(self, line_addrs: Iterable[int]) -> None:
        """Accumulate a whole address array."""
        for addr in line_addrs:
            self.insert(addr)

    def member_many(self, line_addrs: Iterable[int]) -> List[bool]:
        """Vector membership test: one bool per address, same order."""
        member = self.member
        return [member(addr) for addr in line_addrs]

    def filter_members(self, line_addrs: Iterable[int]) -> List[int]:
        """The subsequence of ``line_addrs`` the signature may contain."""
        member = self.member
        return [addr for addr in line_addrs if member(addr)]

    @abstractmethod
    def union_update(self, other: "Signature") -> None:
        """In-place union (bitwise OR for Bloom signatures)."""

    # -- functional operations (Figure 2b) ----------------------------------
    @abstractmethod
    def intersect(self, other: "Signature") -> "Signature":
        """Signature intersection (∩)."""

    @abstractmethod
    def union(self, other: "Signature") -> "Signature":
        """Signature union (∪)."""

    @abstractmethod
    def is_empty(self) -> bool:
        """Emptiness test (= ∅): true iff no address can be a member."""

    @abstractmethod
    def member(self, line_addr: int) -> bool:
        """Membership test (∈); may report false positives."""

    @abstractmethod
    def decode_sets(self, num_sets: int) -> Set[int]:
        """Decode (δ) into the cache-set indices that could hold members.

        Enables *signature expansion*: finding all lines in a cache (or
        directory) that may belong to the signature without traversing the
        whole structure.
        """

    @abstractmethod
    def copy(self) -> "Signature":
        """Deep copy; used when a chunk hands its signatures to the arbiter."""

    @abstractmethod
    def empty_like(self) -> "Signature":
        """A new empty signature with this signature's geometry."""

    # -- fast predicates (allocation-free disambiguation) --------------------
    def disjoint(self, other: "Signature") -> bool:
        """True iff ``self ∩ other`` is provably empty.

        Semantically identical to ``self.intersect(other).is_empty()``;
        concrete signatures override it with a kernel that never
        materializes the intermediate signature (the hardware's bulk
        bitwise circuit, Figure 2b).  This is the hot-path predicate used
        by the BDM, the arbiter, and the DirBDM admission checks.
        """
        return self.intersect(other).is_empty()

    # -- convenience ---------------------------------------------------------
    def intersects(self, other: "Signature") -> bool:
        """True iff ``self ∩ other`` might be non-empty."""
        return not self.disjoint(other)

    # -- introspection (for stats; not available to 'hardware') -------------
    @abstractmethod
    def exact_members(self) -> FrozenSet[int]:
        """The precise set of inserted addresses.

        This is *simulator-only* bookkeeping used to measure aliasing
        (false positives, unnecessary lookups) for the paper's Tables 3-4;
        the modeled hardware never reads it.
        """
