"""Address signatures and bulk operations (paper Section 2.2).

A signature is a superset encoding of a set of line addresses.  Two
implementations share one interface:

* :class:`~repro.signatures.bloom.BloomSignature` — the hardware-faithful
  banked Bloom filter (~2 Kbit, permute-based hashing) used by every BulkSC
  configuration except BSCexact.
* :class:`~repro.signatures.exact.ExactSignature` — a "magic" alias-free
  signature used to isolate the cost of aliasing (BSCexact in the paper).

The primitive operations of Figure 2(b) — intersection, union, emptiness,
membership, and decoding into cache sets — are methods on the signatures,
with functional wrappers in :mod:`repro.signatures.ops`.
"""

from repro.signatures.base import Signature
from repro.signatures.bloom import INDEX_CACHE, BloomSignature, IndexCache
from repro.signatures.compression import compressed_size_bits, compressed_size_bytes
from repro.signatures.exact import ExactSignature
from repro.signatures.factory import SignatureFactory
from repro.signatures.ops import (
    collides,
    collides_fast,
    disjoint,
    expand_into_sets,
    intersect,
    intersects,
    is_empty,
    member,
    union,
)

__all__ = [
    "Signature",
    "BloomSignature",
    "ExactSignature",
    "SignatureFactory",
    "IndexCache",
    "INDEX_CACHE",
    "intersect",
    "intersects",
    "union",
    "is_empty",
    "member",
    "disjoint",
    "collides",
    "collides_fast",
    "expand_into_sets",
    "compressed_size_bits",
    "compressed_size_bytes",
]
