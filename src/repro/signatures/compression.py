"""Signature compression for network transfer.

The paper states that ~2 Kbit signatures are compressed to ~350 bits when
communicated.  We model the compressed encoding the way simple hardware
would: choose per message between

* a *sparse* encoding — a count plus the positions of set bits (each
  position needs ``log2(size_bits)`` bits), and
* the *raw* bitmap,

whichever is smaller.  An empty signature compresses to a single flag
byte.  Traffic accounting (Figure 11) charges the resulting byte size.
"""

from __future__ import annotations

import math

from repro.signatures.base import Signature
from repro.signatures.bloom import BloomSignature
from repro.signatures.exact import ExactSignature

#: Size of the empty-signature encoding, in bits.
EMPTY_SIGNATURE_BITS = 8


def compressed_size_bits(signature: Signature) -> int:
    """Bits on the wire for ``signature`` under the sparse/raw encoding."""
    if signature.is_empty():
        return EMPTY_SIGNATURE_BITS
    if isinstance(signature, BloomSignature):
        size_bits = signature.size_bits
        set_bits = signature.popcount()
    elif isinstance(signature, ExactSignature):
        # Magic signature: charge what the equivalent Bloom transfer costs,
        # so BSCexact isolates aliasing, not bandwidth.
        size_bits = 2048
        set_bits = min(len(signature.exact_members()) * 4, size_bits)
    else:  # pragma: no cover - future signature kinds
        raise TypeError(f"unknown signature type {type(signature).__name__}")
    position_bits = max(1, int(math.ceil(math.log2(size_bits))))
    sparse_bits = 16 + set_bits * position_bits  # 16-bit count header
    return min(sparse_bits, size_bits) + EMPTY_SIGNATURE_BITS


def compressed_size_bytes(signature: Signature) -> int:
    """Bytes on the wire (rounded up) for ``signature``."""
    return (compressed_size_bits(signature) + 7) // 8
