"""Deterministic random number generation.

Every stochastic choice in the simulator (workload generation, backoff
jitter) flows through :class:`DeterministicRng` so a (seed, config) pair
fully determines an experiment.  Sub-streams derived with :meth:`fork` are
independent of each other and of the order in which other streams are
consumed, which keeps workloads identical across consistency models.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random stream with named, independent sub-streams.

    Every draw bumps :attr:`draws`, a monotonically increasing counter.
    Two executions that consumed a different number of draws have
    demonstrably diverged, so the counter is recorded in replay traces
    and livelock dumps: a divergence diagnostic can name the exact draw
    index where two executions split.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)
        #: Number of draws consumed from this stream so far.  Counts
        #: API-level calls (one per ``randint``/``choice``/... and one
        #: per Bernoulli trial of :meth:`geometric`), not underlying
        #: entropy bits; what matters is that equal executions produce
        #: equal counts.
        self.draws = 0

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream keyed by ``label``.

        Forking is a pure function of ``(self.seed, label)``: it does not
        consume state from this stream, so call order cannot perturb
        downstream randomness.  The derivation uses CRC32 rather than
        ``hash()`` because Python randomizes string hashing per process.
        """
        digest = zlib.crc32(label.encode("utf-8"), self.seed & 0xFFFFFFFF)
        child_seed = (self.seed * 0x9E3779B1 + digest) & 0x7FFFFFFFFFFFFFFF
        return DeterministicRng(child_seed)

    # Thin wrappers over random.Random -------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        self.draws += 1
        return self._random.randint(lo, hi)

    def random(self) -> float:
        self.draws += 1
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        self.draws += 1
        return self._random.uniform(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        self.draws += 1
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self.draws += 1
        self._random.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        self.draws += 1
        return self._random.sample(seq, k)

    def expovariate(self, lambd: float) -> float:
        self.draws += 1
        return self._random.expovariate(lambd)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success."""
        if not 0 < p <= 1:
            raise ValueError(f"p must be in (0, 1], got {p}")
        count = 1
        while self.random() >= p:
            count += 1
        return count

    def zipf_index(self, n: int, alpha: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with a Zipf-like skew.

        Used by the commercial-workload generators to model hot shared
        structures (locks, counters) next to a long cold tail.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        # Inverse-CDF on the harmonic-weighted ranks, approximated with a
        # power transform which is accurate enough for workload shaping.
        u = self.random()
        idx = int(n * (u ** (1.0 + alpha)))
        return min(idx, n - 1)
