"""Discrete-event simulation engine.

The engine is deliberately generic: it knows nothing about processors,
caches, or consistency models.  It provides

* :class:`~repro.engine.event.Event` and the priority queue that orders them,
* :class:`~repro.engine.simulator.Simulator` — the clock and run loop,
* :class:`~repro.engine.stats.StatsRegistry` — hierarchical counters and
  distributions used by every subsystem for the paper's characterization
  tables, and
* :class:`~repro.engine.rng.DeterministicRng` — a seeded random source so
  every experiment is exactly reproducible.
"""

from repro.engine.event import Event, EventQueue
from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.engine.stats import Counter, Distribution, StatsRegistry, TimeWeightedStat

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "StatsRegistry",
    "Counter",
    "Distribution",
    "TimeWeightedStat",
    "DeterministicRng",
]
