"""Hierarchical simulation statistics.

Every subsystem (caches, arbiter, directory, processors, network) records
into a shared :class:`StatsRegistry`.  The registry supports three kinds of
statistics, matching what the paper's characterization tables need:

* :class:`Counter` — monotonically increasing event counts (commits,
  squashes, lookups, bytes, ...).
* :class:`Distribution` — samples with mean/max (set sizes, chunk lengths).
* :class:`TimeWeightedStat` — a value integrated over time (arbiter W-list
  occupancy, "% of time non-empty").
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Distribution:
    """Streaming mean/max/min over samples (no sample storage)."""

    __slots__ = ("name", "count", "total", "max", "min")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def sample(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Distribution({self.name} n={self.count} mean={self.mean:.3f})"


class TimeWeightedStat:
    """A piecewise-constant value integrated over simulated time.

    Used for occupancies: set the value whenever it changes, passing the
    current cycle; the stat accumulates ``value * dt`` so that
    :meth:`average` over ``[0, end]`` is the time-weighted mean and
    :meth:`fraction_nonzero` is the share of time the value was non-zero.
    """

    __slots__ = ("name", "_value", "_last_time", "_area", "_nonzero_time")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._last_time = 0.0
        self._area = 0.0
        self._nonzero_time = 0.0

    def set(self, value: float, now: float) -> None:
        self._accumulate(now)
        self._value = value

    def adjust(self, delta: float, now: float) -> None:
        self.set(self._value + delta, now)

    def _accumulate(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            self._area += self._value * dt
            if self._value != 0:
                self._nonzero_time += dt
            self._last_time = now

    @property
    def current(self) -> float:
        return self._value

    def average(self, end_time: float) -> float:
        self._accumulate(end_time)
        return self._area / end_time if end_time > 0 else 0.0

    def fraction_nonzero(self, end_time: float) -> float:
        self._accumulate(end_time)
        return self._nonzero_time / end_time if end_time > 0 else 0.0


class StatsRegistry:
    """A flat namespace of named statistics with lazy creation.

    Names are dotted paths (``"arbiter.commits"``, ``"proc3.squashes"``);
    subsystems fetch-or-create with :meth:`counter`, :meth:`distribution`,
    and :meth:`time_weighted`.
    """

    def __init__(self, name: str = "stats"):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._time_weighted: Dict[str, TimeWeightedStat] = {}
        # Host-side observability (memo-cache hit rates, ...): values that
        # depend on process history rather than the simulated execution,
        # so they must never enter the deterministic snapshot().
        self._volatile: Dict[str, float] = {}

    def counter(self, name: str) -> Counter:
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = Counter(name)
        return stat

    def distribution(self, name: str) -> Distribution:
        stat = self._distributions.get(name)
        if stat is None:
            stat = self._distributions[name] = Distribution(name)
        return stat

    def time_weighted(self, name: str) -> TimeWeightedStat:
        stat = self._time_weighted.get(name)
        if stat is None:
            stat = self._time_weighted[name] = TimeWeightedStat(name)
        return stat

    # Convenience shortcuts ------------------------------------------------
    def bump(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def value(self, name: str, default: float = 0.0) -> float:
        stat = self._counters.get(name)
        return stat.value if stat is not None else default

    def bump_volatile(self, name: str, amount: float = 1.0) -> None:
        """Count a *host-side* event (e.g. a process-global cache hit).

        Volatile counters are reported by :meth:`volatile_snapshot` only —
        :meth:`snapshot` excludes them, so run artifacts stay bit-identical
        whether cells execute serially, interleaved, or in worker
        processes that share (or don't share) process-global caches.
        """
        self._volatile[name] = self._volatile.get(name, 0.0) + amount

    def volatile_snapshot(self) -> Dict[str, float]:
        """The host-side counters, separate from the deterministic stats."""
        return {name: self._volatile[name] for name in sorted(self._volatile)}

    def counters(self) -> Iterator[Tuple[str, float]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def snapshot(self, end_time: Optional[float] = None) -> Dict[str, float]:
        """Flatten every counter (and distribution means) into one dict.

        With ``end_time`` (the run's final cycle), time-weighted stats are
        flattened too (``<name>.avg``, ``<name>.nonzero_frac``), so the
        snapshot is self-contained — consumers need not hold the live
        registry to read occupancies.  Volatile counters never appear.
        """
        out: Dict[str, float] = {}
        for name, value in self.counters():
            out[name] = value
        for name in sorted(self._distributions):
            dist = self._distributions[name]
            out[f"{name}.mean"] = dist.mean
            out[f"{name}.count"] = float(dist.count)
        if end_time is not None:
            for name in sorted(self._time_weighted):
                tw = self._time_weighted[name]
                out[f"{name}.avg"] = tw.average(end_time)
                out[f"{name}.nonzero_frac"] = tw.fraction_nonzero(end_time)
        return out
