"""The simulation kernel: a clock plus an event run loop.

Subsystems register work by scheduling events; the simulator advances the
clock to each event in deterministic order.  The kernel also owns the
:class:`~repro.engine.stats.StatsRegistry` so every component hangs its
counters off one tree.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue
from repro.engine.rng import DeterministicRng
from repro.engine.stats import StatsRegistry
from repro.errors import LivelockError, SimulationError


class Simulator:
    """Discrete-event simulation kernel.

    Attributes:
        now: Current simulated cycle.
        stats: Root statistics registry shared by all components.
        rng: Deterministic random source for the whole simulation.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.queue = EventQueue()
        self.stats = StatsRegistry("sim")
        self.rng = DeterministicRng(seed)
        self._events_fired = 0
        self._stop_requested = False
        self._exported_compactions = 0
        self._exported_cancelled = 0
        self._end_hooks: list[Callable[[], None]] = []
        self._diagnostic_providers: list[Callable[[], str]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before now={self.now}"
            )
        return self.queue.push(Event(time, action, priority, label))

    def after(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.at(self.now + delay, action, priority, label)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to halt after the current event."""
        self._stop_requested = True

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback invoked once when :meth:`run` finishes."""
        self._end_hooks.append(hook)

    def add_diagnostic_provider(self, provider: Callable[[], str]) -> None:
        """Register a callback contributing lines to the livelock dump.

        Providers are invoked only when the ``max_events`` guard trips, so
        they may be arbitrarily expensive.  Each should return a short
        multi-line description of its component's state (e.g. per-driver
        chunk phases).
        """
        self._diagnostic_providers.append(provider)

    def _livelock_report(self, max_events: int) -> str:
        """Describe what the simulation was doing when the budget blew."""
        lines = [
            f"exceeded max_events={max_events} at cycle {self.now}; likely livelock",
            f"rng draws consumed: {self.rng.draws}",
        ]
        pending = list(self.queue.live_events())
        if pending:
            # Group labels with instance numbers normalized away so
            # "commit17.decide" and "commit41.decide" count together.
            groups = Counter(
                re.sub(r"\d+", "#", e.label) or "<unlabelled>" for e in pending
            )
            lines.append(f"pending events: {len(pending)}")
            for label, count in groups.most_common(8):
                lines.append(f"  {count:>6} × {label}")
        else:
            lines.append("pending events: none (budget consumed by fired events)")
        for provider in self._diagnostic_providers:
            try:
                text = provider()
            except Exception as exc:  # diagnostics must never mask the abort
                text = f"<diagnostic provider failed: {exc!r}>"
            if text:
                lines.append(text.rstrip())
        return "\n".join(lines)

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains, ``until`` is reached, or stop().

        Args:
            until: Optional cycle bound (inclusive); events after it stay
                queued.
            max_events: Safety valve against runaway simulations.

        Returns:
            The final simulated time.
        """
        self._stop_requested = False
        while self.queue:
            if self._stop_requested:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            assert event is not None
            self.now = event.time
            self._events_fired += 1
            if self._events_fired > max_events:
                raise LivelockError(self._livelock_report(max_events))
            event.action()
        self._export_queue_stats()
        for hook in self._end_hooks:
            hook()
        return self.now

    def _export_queue_stats(self) -> None:
        """Record queue compaction activity as deterministic counters.

        Compactions depend only on the simulated cancel pattern, so they
        are safe in the deterministic snapshot.  The counters are created
        lazily — runs that never compact keep their snapshot unchanged.
        """
        delta = self.queue.compactions - self._exported_compactions
        if delta:
            self.stats.bump("queue.compactions", delta)
            self._exported_compactions = self.queue.compactions
        delta = self.queue.cancelled_live - self._exported_cancelled
        if delta or self._exported_cancelled:
            self.stats.bump("queue.cancelled_live", delta)
            self._exported_cancelled = self.queue.cancelled_live

    @property
    def events_fired(self) -> int:
        return self._events_fired
