"""Events and the event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
cycle with the same priority fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A callback scheduled to fire at a simulated time.

    Attributes:
        time: Cycle at which the event fires.
        priority: Tie-breaker; lower fires first within a cycle.
        seq: Monotonic sequence number assigned by the queue.
        action: Zero-argument callable run when the event fires.
        label: Human-readable tag, used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ):
        self.time = time
        self.priority = priority
        self.seq = -1  # assigned on push
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded.  Calling
        ``cancel`` more than once is harmless.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} {self.label!r}{state}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def _note_cancel(self) -> None:
        self._live -= 1

    def push(self, event: Event) -> Event:
        """Insert ``event`` and return it (so callers can keep a handle)."""
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        event.seq = next(self._counter)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
