"""Events and the coalesced event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
cycle with the same priority fire in the order they were scheduled.

The queue is *coalesced*: instead of one global heap entry per event, a
small heap of distinct cycle keys points at per-cycle buckets.  Most
simulation traffic schedules many events at the same instant (a commit's
fan-out of invalidations, a batch of processor steps), so the global heap
stays tiny and each push/pop degenerates to an append/heap-op on a bucket
of a few entries — the same bulk principle the simulated hardware applies
to memory accesses.

Cancellation stays O(1) and lazy, but no longer leaks: once the number of
cancelled-but-still-queued events crosses a threshold (and outnumbers the
live ones), the queue compacts, dropping every dead entry in one sweep.
``compactions`` and ``cancelled_live`` are exported into the run's stats
by :class:`~repro.engine.simulator.Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional


class Event:
    """A callback scheduled to fire at a simulated time.

    Attributes:
        time: Cycle at which the event fires.
        priority: Tie-breaker; lower fires first within a cycle.
        seq: Monotonic sequence number assigned by the queue.
        action: Zero-argument callable run when the event fires.
        label: Human-readable tag, used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ):
        self.time = time
        self.priority = priority
        self.seq = -1  # assigned on push
        self.action = action
        self.label = label
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped.

        Cancellation is O(1); the queue entry is lazily discarded (and
        reclaimed wholesale once enough dead entries accumulate).
        Calling ``cancel`` more than once is harmless.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} {self.label!r}{state}>"


class EventQueue:
    """A deterministic coalesced min-queue of :class:`Event` objects.

    Structure: ``_times`` is a heap of distinct fire cycles; ``_buckets``
    maps each cycle to a per-cycle heap of events ordered by
    ``(priority, seq)`` (all entries share the cycle, so ``Event.__lt__``
    reduces to exactly that).  The documented total order
    ``(time, priority, seq)`` is preserved bit-for-bit.
    """

    #: Compact once this many cancelled events are queued *and* they
    #: outnumber the live ones.  Keeps the sweep amortized-O(1) per
    #: cancellation while bounding the queue to O(live).
    COMPACT_THRESHOLD = 1024

    def __init__(self) -> None:
        self._times: list[float] = []  # heap of distinct cycle keys
        self._buckets: dict[float, list[Event]] = {}  # cycle -> event heap
        self._counter = itertools.count()
        self._live = 0
        self._cancelled_live = 0
        #: Total lazily-cancelled entries reclaimed by compaction sweeps.
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_live(self) -> int:
        """Cancelled events still occupying queue entries."""
        return self._cancelled_live

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled_live += 1
        if (
            self._cancelled_live >= self.COMPACT_THRESHOLD
            and self._cancelled_live > self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one sweep (bounds queue size)."""
        buckets = self._buckets
        for time in list(buckets):
            kept = [e for e in buckets[time] if not e.cancelled]
            if kept:
                heapq.heapify(kept)
                buckets[time] = kept
            else:
                del buckets[time]
        self._times = list(buckets)
        heapq.heapify(self._times)
        self._cancelled_live = 0
        self.compactions += 1

    def push(self, event: Event) -> Event:
        """Insert ``event`` and return it (so callers can keep a handle)."""
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        event.seq = next(self._counter)
        event._queue = self
        bucket = self._buckets.get(event.time)
        if bucket is None:
            self._buckets[event.time] = [event]
            heapq.heappush(self._times, event.time)
        else:
            heapq.heappush(bucket, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets.get(time)
            while bucket:
                event = heapq.heappop(bucket)
                if event.cancelled:
                    self._cancelled_live -= 1
                    continue
                if not bucket:
                    heapq.heappop(times)
                    del buckets[time]
                self._live -= 1
                event._queue = None
                return event
            # Bucket drained (or missing after a compaction race): retire
            # the time key and move on.
            heapq.heappop(times)
            buckets.pop(time, None)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the earliest live event without popping."""
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets.get(time)
            while bucket and bucket[0].cancelled:
                self._cancelled_live -= 1
                heapq.heappop(bucket)
            if bucket:
                return time
            heapq.heappop(times)
            buckets.pop(time, None)
        return None

    def live_events(self) -> Iterator[Event]:
        """Iterate the live (non-cancelled) queued events, unordered."""
        for bucket in self._buckets.values():
            for event in bucket:
                if not event.cancelled:
                    yield event

    def entry_count(self) -> int:
        """Queued entries including lazily-cancelled ones (size bound)."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def clear(self) -> None:
        self._times.clear()
        self._buckets.clear()
        self._live = 0
        self._cancelled_live = 0
