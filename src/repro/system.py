"""Machine assembly: configuration + workload -> runnable simulation.

:class:`Machine` wires the substrates together according to the
configured consistency model:

* every model gets the event kernel, coherence controller (caches +
  directories + network), global memory image, sync manager, and history;
* BulkSC additionally gets per-processor BDMs, DirBDMs on each directory,
  the (central or distributed) arbiter, and the commit engine.

:func:`run_workload` is the one-call entry point used by the examples,
tests, and benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.coherence.dirbdm import DirBDM
from repro.coherence.protocol import AccessOutcome, CoherenceController
from repro.consistency.rc import RCDriver
from repro.consistency.sc import SCDriver
from repro.consistency.scpp import SCPPDriver
from repro.consistency.tso import TSODriver
from repro.core.bdm import BDM
from repro.core.chunk import Chunk
from repro.core.commit import CommitEngine
from repro.core.arbiter import Arbiter
from repro.core.distributed_arbiter import DistributedArbiter
from repro.core.driver import BulkSCDriver
from repro.core.recovery import ArbiterRecoveryManager
from repro.cpu.driver import DriverState, ProcessorDriver
from repro.cpu.sync import SyncManager
from repro.cpu.thread import ThreadContext, ThreadProgram
from repro.engine.simulator import Simulator
from repro.errors import ConfigError, DeadlockError
from repro.faults.injector import FaultInjector
from repro.interconnect.network import Network
from repro.signatures.bloom import INDEX_CACHE
from repro.interconnect.traffic import TrafficClass
from repro.memory.address import AddressSpace
from repro.memory.cache import LineState
from repro.memory.main_memory import MainMemory
from repro.params import (
    ArbiterTopology,
    ConsistencyModelKind,
    SystemConfig,
)
from repro.signatures.compression import compressed_size_bytes
from repro.signatures.factory import SignatureFactory
from repro.verify.history import ExecutionHistory


@dataclass
class RunResult:
    """Everything a simulation produces."""

    config: SystemConfig
    cycles: float
    per_proc_finish: List[float]
    total_instructions: int
    registers: Dict[int, Dict[str, int]]
    stats: Dict[str, float]
    traffic_bytes: Dict[str, int]
    history: ExecutionHistory
    memory: MainMemory
    machine: "Machine" = field(repr=False, default=None)

    @property
    def model_name(self) -> str:
        return self.config.model.value

    def stat(self, name: str, default: float = 0.0) -> float:
        return self.stats.get(name, default)

    def slim(self) -> "RunResult":
        """A copy without the live machine, safe to pickle across processes.

        The machine's event heap holds closures, so a full result cannot
        cross a pool boundary; everything else — config, stats, history,
        memory image, registers — is plain data and travels intact.
        """
        return replace(self, machine=None)


class Machine:
    """One simulated multiprocessor running one workload."""

    def __init__(
        self,
        config: SystemConfig,
        programs: List[ThreadProgram],
        address_space: AddressSpace,
        record_history: bool = True,
        fault_injector: Optional[FaultInjector] = None,
    ):
        config.validate()
        if len(programs) > config.num_processors:
            raise ConfigError(
                f"{len(programs)} programs for {config.num_processors} processors"
            )
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.stats = self.sim.stats
        # Fault injection: an inactive injector is a pure passthrough, so
        # every machine carries one and hardened paths need no None checks.
        self.fault_injector = (
            fault_injector if fault_injector is not None else FaultInjector()
        )
        self.fault_injector.bind(self.sim)
        self.sim.add_diagnostic_provider(self._driver_diagnostics)
        self.memory = MainMemory()
        use_dir_cache = (
            config.model is ConsistencyModelKind.BULKSC
            and config.bulksc.use_directory_cache
        )
        self.coherence = CoherenceController(
            config,
            self.stats,
            use_directory_cache=use_dir_cache,
            directory_cache_sets=config.bulksc.directory_cache_sets,
            directory_cache_ways=config.bulksc.directory_cache_ways,
            on_directory_displace=self._on_directory_displacement
            if use_dir_cache
            else None,
        )
        self.sync = SyncManager(self.sim)
        self.history = ExecutionHistory(enabled=record_history)
        self.address_space = address_space
        self.coherence.eviction_observer = self._on_l1_eviction
        # Threads: unassigned processors idle on an empty program.
        self.threads: List[ThreadContext] = []
        for proc in range(config.num_processors):
            program = (
                programs[proc]
                if proc < len(programs)
                else ThreadProgram([], name=f"idle{proc}")
            )
            self.threads.append(ThreadContext(proc, program))
        # BulkSC machinery (None for baselines).
        self.bdms: List[BDM] = []
        self.dirbdms: List[DirBDM] = []
        self.arbiter = None
        self.commit_engine: Optional[CommitEngine] = None
        self.recovery: Optional[ArbiterRecoveryManager] = None
        if config.model is ConsistencyModelKind.BULKSC:
            self._build_bulksc()
        self.drivers: List[ProcessorDriver] = [
            self._build_driver(proc) for proc in range(config.num_processors)
        ]
        self._finished_count = 0
        self._result: Optional[RunResult] = None
        # Baseline of the process-global signature index cache, so run()
        # can record this machine's hit/miss/eviction deltas in its stats.
        self._index_cache_base = INDEX_CACHE.counters()
        #: Non-speculative I/O operations, in global order:
        #: (time, proc, device, value).
        self.io_log: List[tuple] = []

    def perform_io(self, time: float, proc: int, device: int, value: int) -> None:
        """Record a completed uncached I/O operation."""
        self.io_log.append((time, proc, device, value))
        self.stats.bump("io.operations")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_bulksc(self) -> None:
        cfg = self.config
        factory = SignatureFactory(cfg.bulksc.signature)
        self.bdms = [
            BDM(
                proc,
                self.coherence.l1s[proc],
                factory,
                private_buffer_capacity=cfg.bulksc.private_buffer_lines,
                stats=self.stats,
            )
            for proc in range(cfg.num_processors)
        ]
        self.dirbdms = [
            DirBDM(directory, stats=self.stats)
            for directory in self.coherence.directories
        ]
        if cfg.bulksc.arbiter_topology is ArbiterTopology.DISTRIBUTED:
            self.arbiter = DistributedArbiter(
                cfg.bulksc, cfg.num_directories, self.stats
            )
        else:
            self.arbiter = Arbiter(cfg.bulksc, self.stats)
        self.commit_engine = CommitEngine(self)
        self.recovery = ArbiterRecoveryManager(self)
        self.fault_injector.crash_handler = self.recovery.crash
        self.fault_injector.crash_targets = self.recovery.crash_targets()

    def _build_driver(self, proc: int) -> ProcessorDriver:
        model = self.config.model
        thread = self.threads[proc]
        if model is ConsistencyModelKind.SC:
            return SCDriver(proc, thread, self)
        if model is ConsistencyModelKind.RC:
            return RCDriver(proc, thread, self)
        if model is ConsistencyModelKind.TSO:
            return TSODriver(proc, thread, self)
        if model is ConsistencyModelKind.SCPP:
            return SCPPDriver(proc, thread, self)
        if model is ConsistencyModelKind.BULKSC:
            return BulkSCDriver(proc, thread, self)
        raise ConfigError(f"unknown model {model}")

    # ------------------------------------------------------------------
    # Cross-component services
    # ------------------------------------------------------------------
    def broadcast_write(self, writer_proc: int, line_addr: int, time: float) -> None:
        """A store became visible; let other drivers react (SHiQ, prefetch)."""
        for driver in self.drivers:
            if driver.proc == writer_proc:
                continue
            hook = getattr(driver, "on_remote_write", None)
            if hook is not None:
                hook(line_addr, time)

    def deliver_commit_to_proc(self, proc: int, chunk: Chunk, now: float) -> None:
        """Forward a committing chunk's W to one processor's BDM."""
        driver = self.drivers[proc]
        assert isinstance(driver, BulkSCDriver)
        driver.on_incoming_commit(chunk, now, on_invalidation_list=True)

    def inject_spurious_squash(self, proc: int, now: float) -> None:
        """Fault injection: squash ``proc``'s active chunks out of the blue."""
        driver = self.drivers[proc]
        if isinstance(driver, BulkSCDriver):
            driver.force_spurious_squash(now)

    def _driver_diagnostics(self) -> str:
        """Per-driver state for the livelock diagnostic dump."""
        lines = ["per-driver state:"]
        for d in self.drivers:
            desc = f"  proc{d.proc}: {d.state.value}"
            reason = getattr(d, "_block_reason", None)
            if reason:
                desc += f" ({reason})"
            if isinstance(d, BulkSCDriver):
                desc += (
                    f" commits={d.chunk_commits} squashes={d.chunk_squashes}"
                    f" fifo={len(d._commit_fifo)}"
                    f" arbitrating={d._arbitrating is not None}"
                )
            lines.append(desc)
        if self.fault_injector.active:
            lines.append(f"injected faults: {self.fault_injector.summary()}")
        if self.recovery is not None:
            arbiters = (
                self.arbiter.arbiters
                if isinstance(self.arbiter, DistributedArbiter)
                else [self.arbiter]
            )
            for arb in arbiters:
                if arb.mode.value != "normal":
                    lines.append(
                        f"arbiter{arb.index}: mode={arb.mode.value} "
                        f"epoch={arb.epoch}"
                    )
        return "\n".join(lines)

    def check_missed_collision(self, proc: int, chunk: Chunk, now: float) -> None:
        """Safety net for the directory's invalidation-list filter.

        The Table 1 filter must never hide a *true* conflict: every read
        registers its processor as a sharer (clean L1 evictions are
        silent), so a processor with the committed line in any active R
        or W set is always on the invalidation list.  Ground truth is
        checked here; a hit means a protocol invariant broke, and the
        chunk is squashed anyway to keep the simulation SC.
        """
        driver = self.drivers[proc]
        assert isinstance(driver, BulkSCDriver)
        if not chunk.true_written_lines:
            return
        for local in self.bdms[proc].active_chunks():
            if not local.is_active:
                continue
            touched = local.true_read_lines | local.true_written_lines
            if touched & chunk.true_written_lines:
                self.stats.bump(f"proc{proc}.squashes_missed_by_dir_filter")
                driver.on_incoming_commit(chunk, now, on_invalidation_list=False)
                return

    def bulk_fetch(
        self,
        proc: int,
        line_addr: int,
        now: float,
        pinned: Callable[[int], bool],
    ) -> AccessOutcome:
        """A chunk's demand fetch: read request + BulkSC intercepts.

        Two interceptions happen before the plain coherence fill:

        * **Read-disable bounce** (Section 4.3.2): the home DirBDM
          membership-tests the line against every in-flight committed W;
          a hit bounces the read, which retries after the commit's
          acknowledgements — modeled as added latency.
        * **Wpriv intervention** (Section 5.2): if the dirty owner's BDM
          finds the line in a running chunk's Wpriv, the Private Buffer
          supplies the *old* version and the address is added back into
          that chunk's W signature.
        """
        extra_latency = 0.0
        dir_index = self.coherence.address_map.directory_of(line_addr)
        dirbdm = self.dirbdms[dir_index]
        if dirbdm.is_read_disabled(line_addr):
            extra_latency += (
                2 * self.config.network_hop_cycles + CommitEngine.ACK_TURNAROUND_CYCLES
            )
        self._maybe_wpriv_intervention(proc, line_addr)
        outcome = self.coherence.fetch_for_chunk(proc, line_addr, now, pinned)
        if extra_latency:
            outcome.latency += extra_latency
        return outcome

    def _maybe_wpriv_intervention(self, requester: int, line_addr: int) -> None:
        directory = self.coherence.home_directory(line_addr)
        entry = directory.peek(line_addr)
        if (
            entry is None
            or not entry.dirty
            or entry.owner is None
            or entry.owner == requester
        ):
            return
        owner = entry.owner
        owner_bdm = self.bdms[owner]
        if owner_bdm.wpriv_member(line_addr) is None:
            return
        # The predicted-private pattern broke: provide the old copy from
        # the Private Buffer and "add back" the address to W (Section
        # 5.2).  Every in-flight chunk that routed this line into Wpriv
        # must move it to W — otherwise a later chunk could commit an
        # update to the line without the requester (which now holds the
        # line in its R signature) ever being disambiguated.
        image = owner_bdm.private_buffer.supply(line_addr)
        matched = False
        for chunk in owner_bdm.active_chunks():
            if not chunk.is_active or not chunk.wpriv_sig.member(line_addr):
                continue
            matched = True
            chunk.private_buffer_lines.discard(line_addr)
            chunk.w_sig.insert(line_addr)
            chunk.true_written_lines.add(line_addr)
        if not matched:
            return
        if image is not None:
            self.stats.bump(f"proc{owner}.data_from_private_buffer")
        # The old version reaches L2; the owner's cached copy is now a
        # speculative version protected by W (pinned, re-owned at commit).
        owner_line = self.coherence.l1s[owner].probe(line_addr)
        if owner_line is not None:
            owner_line.state = LineState.SHARED
        entry.clear_owner()
        entry.sharers.add(owner)

    def _on_directory_displacement(self, entry) -> None:
        """Directory-cache displacement protocol (Section 4.3.3).

        The displaced line's address is built into a one-line signature
        and sent to every sharer cache for bulk disambiguation; cached
        copies are invalidated (written back if dirty).  The work is
        deferred to an immediate event because a displacement can be
        triggered from inside the victim processor's own execution step.
        """
        line_addr = entry.line_addr
        sharers = set(entry.sharers)
        self.stats.bump("directory.displacements")
        # The disambiguation signature travels the fabric: charging the
        # round trip is both realistic and load-bearing — a zero-delay
        # displacement can chain displacement → squash → replay → refetch
        # → displacement at one timestamp and livelock the simulation.
        delay = 2.0 * self.config.network_hop_cycles
        self.sim.after(
            delay,
            lambda: self._process_directory_displacement(line_addr, sharers),
            label=f"dir.displace@{line_addr:#x}",
        )

    def _process_directory_displacement(self, line_addr: int, sharers) -> None:
        if not self.bdms:
            for proc in sharers:
                self.coherence.invalidate_in_cache(proc, line_addr)
            return
        factory = self.bdms[0].factory
        signature = factory.from_addresses([line_addr])
        now = self.sim.now
        dir_node = Network.directory(
            self.coherence.address_map.directory_of(line_addr)
        )
        for proc in sorted(sharers):
            self.coherence.network.send(
                dir_node,
                Network.proc(proc),
                TrafficClass.WR_SIG,
                compressed_size_bytes(signature),
            )
            driver = self.drivers[proc]
            if isinstance(driver, BulkSCDriver):
                bdm = self.bdms[proc]
                colliding = bdm.disambiguate(signature)
                if colliding:
                    self.stats.bump("directory.displacement_squashes")
                    oldest = min(colliding, key=lambda c: c.chunk_id)
                    driver._squash_from(oldest, now)
            # Invalidate (and write back if dirty) the cached copy.  A
            # dirty non-speculative copy safely reaches memory; the
            # committed image already holds its value.
            line = self.coherence.l1s[proc].probe(line_addr)
            if line is not None and line.dirty:
                self.coherence.writeback_line(proc, line_addr)
            self.coherence.invalidate_in_cache(proc, line_addr)

    def _on_l1_eviction(self, proc: int, line_addr: int) -> None:
        """Table 3 bookkeeping: displacement of speculatively-read lines."""
        if not self.bdms:
            return
        for chunk in self.bdms[proc].active_chunks():
            if chunk.is_active and line_addr in chunk.true_read_lines:
                self.stats.bump(f"proc{proc}.spec_read_displacements")
                return

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def driver_finished(self, driver: ProcessorDriver) -> None:
        self._finished_count += 1

    def run(
        self,
        max_cycles: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> RunResult:
        """Execute the workload to completion and collect results."""
        for driver in self.drivers:
            driver.start()
        self.sim.run(until=max_cycles, max_events=max_events)
        unfinished = [d.proc for d in self.drivers if d.state is not DriverState.FINISHED]
        if unfinished and max_cycles is None:
            details = {
                d.proc: (d.state.value, d.thread.pc, str(d.thread.current_op()))
                for d in self.drivers
                if d.state is not DriverState.FINISHED
            }
            raise DeadlockError(
                f"simulation drained with unfinished processors {unfinished}: {details}"
            )
        finish_times = [
            driver.finish_time if driver.finish_time is not None else self.sim.now
            for driver in self.drivers
        ]
        cycles = max(finish_times) if finish_times else self.sim.now
        # Signature index-cache activity since this machine was built.  The
        # cache is process-global, so the deltas depend on what else ran in
        # this process — volatile observability, never deterministic stats.
        for key, value in INDEX_CACHE.counters().items():
            delta = value - self._index_cache_base.get(key, 0)
            if delta:
                self.stats.bump_volatile(f"signature.index_cache.{key}", delta)
        self._result = RunResult(
            config=self.config,
            cycles=cycles,
            per_proc_finish=finish_times,
            total_instructions=sum(t.retired_instructions for t in self.threads),
            registers={t.proc: dict(t.registers) for t in self.threads},
            stats=self.stats.snapshot(end_time=cycles),
            traffic_bytes=self.coherence.network.meter.breakdown(),
            history=self.history,
            memory=self.memory,
            machine=self,
        )
        return self._result


def run_workload(
    config: SystemConfig,
    programs: List[ThreadProgram],
    address_space: AddressSpace,
    record_history: bool = True,
    max_cycles: Optional[float] = None,
    fault_injector: Optional[FaultInjector] = None,
    max_events: int = 50_000_000,
) -> RunResult:
    """Build a machine, run it to completion, and return the result."""
    machine = Machine(
        config, programs, address_space, record_history, fault_injector
    )
    return machine.run(max_cycles, max_events=max_events)
