"""Exception hierarchy for the BulkSC reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processors still had work to do."""


class ProtocolError(SimulationError):
    """A coherence or commit-protocol invariant was violated."""


class ProgramError(ReproError):
    """A thread program is malformed (bad operands, unknown ops, ...)."""


class ConsistencyViolation(ReproError):
    """An execution history failed a sequential-consistency check.

    Raised by :mod:`repro.verify` when asked to *assert* SC rather than
    merely report.  Carries the offending explanation for debugging.
    """

    def __init__(self, message: str, witness: object = None):
        super().__init__(message)
        self.witness = witness
