"""Exception hierarchy for the BulkSC reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processors still had work to do."""


class LivelockError(SimulationError):
    """The event loop exceeded its budget; carries a diagnostic dump."""


class ProtocolError(SimulationError):
    """A coherence or commit-protocol invariant was violated."""


class ResilienceError(SimulationError):
    """A hardened protocol path gave up after its fault budget ran out.

    Raised by the commit engine's watchdogs and the driver's starvation
    watchdog.  Carries the injected-fault trace (a list of
    :class:`~repro.faults.injector.FaultRecord`) so a failing chaos run is
    diagnosable: the error names exactly which faults were injected and
    where the protocol stalled.
    """

    def __init__(self, message: str, fault_trace: object = None):
        super().__init__(message)
        self.fault_trace = list(fault_trace or [])


class CommitTimeoutError(ResilienceError):
    """A commit transaction exhausted its bounded resilience retries."""


class FaultInducedError(ResilienceError):
    """An injected fault stalled the protocol while retries were disabled."""


class StarvationError(ResilienceError):
    """A processor made no commit progress despite pre-arbitration."""


class RecoveryError(ResilienceError):
    """A crashed arbiter failed to return to normal service in time.

    Raised by the recovery watchdog when, after an injected arbiter
    crash, the new epoch never finishes reconstruction (crash-unrecovered
    — e.g. a second crash storm or a wedged reconstruct phase).  Distinct
    from :class:`CommitTimeoutError` so the chaos CLI can report
    crash-unrecovered with its own exit code.
    """


class HarnessError(ReproError):
    """The test/campaign harness itself (not the simulator) failed."""


class WorkerCrashError(HarnessError):
    """A forked worker process died mid-cell and retries were exhausted.

    Raised (or returned as a :class:`~repro.harness.parallel.CellFailure`)
    by :func:`~repro.harness.parallel.parallel_map` when a child exits
    without shipping a result — OOM-killed, segfaulted, or ``kill -9``ed
    — after the configured retry budget.  Distinct from an exception the
    cell function raised, which is deterministic and always propagates
    as itself.
    """


class CellTimeoutError(HarnessError):
    """A cell exceeded its wall-clock budget and its worker was killed.

    Campaigns record these as failed cells rather than letting one
    livelocked simulation hang the whole run.
    """


class CampaignError(HarnessError):
    """A campaign store/spec is invalid, corrupt, or used inconsistently."""


class ServiceError(ReproError):
    """The multi-process service layer failed (transport, protocol, failover).

    Raised by :mod:`repro.service` — the crash-tolerant socket deployment
    of the commit protocol — for failures of the *live* system rather
    than the simulator.  Subclasses separate what went wrong so callers
    (and the ``serve``/``service`` CLI exit codes) can tell a flaky wire
    from a fenced writer from a failed takeover.
    """


class TransportError(ServiceError):
    """A socket leg stayed unreachable after its bounded retry budget."""


class FrameError(TransportError):
    """A peer sent bytes that do not parse as a length-prefixed JSON frame."""


class RequestTimeoutError(TransportError):
    """A request exhausted its per-request timeout across every retry."""


class StaleEpochError(ServiceError):
    """A request quoted an epoch older than the arbiter's current lease.

    The service-level *writer fencing* signal: the quoted lease died with
    a previous arbiter incarnation, so the request must re-enter under
    the live epoch (normally after the takeover fence reaches the node).
    """


class FailoverError(ServiceError):
    """Standby takeover could not restore arbitration service.

    The live-service analogue of :class:`RecoveryError`: reconstruction
    polls or fences failed beyond their retry budgets, so the new epoch
    never reached normal (or even serial degraded) service.
    """


class ProgramError(ReproError):
    """A thread program is malformed (bad operands, unknown ops, ...)."""


class ConsistencyViolation(ReproError):
    """An execution history failed a sequential-consistency check.

    Raised by :mod:`repro.verify` when asked to *assert* SC rather than
    merely report.  Carries the offending explanation for debugging.
    """

    def __init__(self, message: str, witness: object = None):
        super().__init__(message)
        self.witness = witness
