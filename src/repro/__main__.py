"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``run`` — simulate one application under one configuration and print a
  report (optionally JSON).
* ``compare`` — run one application under several configurations and
  print speedups normalized to the first.
* ``litmus`` — run the litmus suite under a configuration.
* ``chaos`` — fault-injection campaigns against the commit pipeline.
* ``analyze`` — static analysis: conflict graphs, races, SC-outcome
  enumeration, and the determinism lint (no simulation).
* ``replay`` — deterministic record/replay of runs, schedule
  exploration, and failure minimization.
* ``campaign`` — durable, checkpointed, resumable certification
  campaigns over an append-only store (``run|status|resume|report``).
* ``serve`` — run one component of the crash-tolerant multi-process
  service (node, arbiter, fault proxy, or a whole cluster).
* ``service`` — benchmark (``bench``) and certify (``certify``) live
  service runs: socket transport, epoch-fenced arbiter failover, SC
  certification of the merged history.
* ``experiments`` — regenerate one of the paper's tables/figures.
* ``profile`` — run the simulator core under cProfile and print the
  hottest functions.
* ``list`` — show the available applications and configurations.

``chaos`` and ``experiments`` accept ``--jobs N`` to fan their
independent simulation cells across worker processes; results are
bit-identical to a serial run (see :mod:`repro.harness.parallel`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.harness.experiments import figure9, figure10, figure11, table3, table4
from repro.harness.metrics import speedup_over
from repro.harness.runner import ALL_APPS, SweepRunner, build_app_workload
from repro.params import NAMED_CONFIGS
from repro.system import run_workload
from repro.tools.report import summarize_run


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions",
        type=int,
        default=10_000,
        help="dynamic instructions per thread (default 10000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def _cmd_list(args: argparse.Namespace) -> int:
    print("applications:")
    for app in ALL_APPS:
        print(f"  {app}")
    print("configurations:")
    for name in NAMED_CONFIGS:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.config not in NAMED_CONFIGS:
        print(f"unknown configuration {args.config!r}; try `list`", file=sys.stderr)
        return 2
    if args.app not in ALL_APPS:
        print(f"unknown application {args.app!r}; try `list`", file=sys.stderr)
        return 2
    config = NAMED_CONFIGS[args.config](seed=args.seed)
    workload = build_app_workload(args.app, config, args.instructions, args.seed)
    result = run_workload(
        config, workload.programs, workload.address_space, record_history=False
    )
    if args.json:
        payload = {
            "app": args.app,
            "config": args.config,
            "cycles": result.cycles,
            "instructions": result.total_instructions,
            "traffic_bytes": result.traffic_bytes,
            "stats": {
                k: v
                for k, v in result.stats.items()
                if not k.startswith("proc") or args.verbose
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(summarize_run(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    configs = args.configs or ["RC", "SC", "BSCdypvt"]
    for name in configs:
        if name not in NAMED_CONFIGS:
            print(f"unknown configuration {name!r}; try `list`", file=sys.stderr)
            return 2
    runner = SweepRunner(args.instructions, args.seed)
    baseline = runner.result(configs[0], args.app)
    print(f"{args.app} ({args.instructions} instructions/thread), "
          f"normalized to {configs[0]}:")
    for name in configs:
        result = runner.result(name, args.app)
        print(
            f"  {name:10s} {result.cycles:12.0f} cycles   "
            f"speedup {speedup_over(baseline, result):.3f}"
        )
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from repro.cpu.isa import Compute
    from repro.cpu.thread import ThreadProgram
    from repro.memory.address import AddressMap, AddressSpace
    from repro.verify.litmus import all_litmus_tests
    from repro.verify.sc_checker import check_sequential_consistency

    config_factory = NAMED_CONFIGS.get(args.config)
    if config_factory is None:
        print(f"unknown configuration {args.config!r}", file=sys.stderr)
        return 2
    staggers = [(1, 1), (1, 60), (60, 1), (200, 7)]
    print(f"litmus under {args.config}:")
    exit_code = 0
    for test in all_litmus_tests():
        forbidden = failures = runs = 0
        for seed in range(args.seed, args.seed + 3):
            config = config_factory(seed=seed)
            for stagger in staggers:
                runs += 1
                space = AddressSpace(
                    AddressMap(config.memory.words_per_line, config.num_directories)
                )
                addrs = {
                    var: space.allocate(
                        var, config.memory.words_per_line
                    ).start_word
                    for var in test.variables
                }
                programs = [
                    ThreadProgram(
                        [Compute(stagger[i % len(stagger)])] + ops, name=f"t{i}"
                    )
                    for i, ops in enumerate(test.build(addrs))
                ]
                result = run_workload(config, programs, space)
                forbidden += test.forbidden(result.registers)
                failures += not check_sequential_consistency(result.history).ok
        print(
            f"  {test.name:6s} forbidden {forbidden:2d}/{runs}   "
            f"witness failures {failures:2d}/{runs}"
        )
    return exit_code


def _chaos_exit_code(report) -> int:
    """Map a chaos report to the CLI's exit-code contract.

    0 = all runs certified; 1 = SC violation or forbidden outcome;
    3 = diagnosable typed failure; 4 = livelock; 5 = crash-unrecovered
    (an arbiter never returned to service after an injected crash).
    Documented in docs/api.md — CI matrix jobs branch on these.
    """
    error = report.first_error
    if error is not None:
        if error.startswith("LivelockError"):
            return 4
        if error.startswith("RecoveryError"):
            return 5
        return 3  # failed diagnosably with a typed ReproError
    if not report.all_certified:
        return 1  # SC violation or forbidden outcome — simulator bug
    return 0


def _cmd_chaos_campaign(args: argparse.Namespace) -> int:
    """``chaos --campaign DIR``: run the chaos grid durably.

    Creates (or resumes — same spec required) a campaign store at DIR
    and executes the chaos cell grid checkpointed and resumable.  The
    exit code follows the campaign report contract, which matches the
    chaos contract for the shared codes (1/3/4/5).
    """
    from repro.campaign.report import spec_digest
    from repro.campaign.runner import RunnerOptions, run_campaign
    from repro.campaign.report import render_report, report_exit_code
    from repro.campaign.store import CampaignStore
    from repro.errors import CampaignError
    from repro.faults.chaos import chaos_campaign_spec

    try:
        spec = chaos_campaign_spec(
            seed=args.seed,
            faults=args.faults,
            workload=args.workload,
            config_name=args.config,
            rate=args.rate,
            no_retry=args.no_retry,
            instructions=args.instructions,
            quick=args.quick,
            crashes=args.crash or (),
        )
        import os

        if os.path.exists(os.path.join(args.campaign, "campaign.json")):
            store = CampaignStore.open(args.campaign)
            if spec_digest(store.spec) != spec_digest(spec):
                print(
                    f"chaos: campaign store {args.campaign!r} holds a "
                    "different spec; pick a fresh --campaign directory",
                    file=sys.stderr,
                )
                return 2
        else:
            store = CampaignStore.create(args.campaign, spec)
        payload = run_campaign(
            store,
            RunnerOptions(jobs=args.jobs),
            progress=lambda m: print(m, file=sys.stderr, flush=True),
        )
    except (CampaignError, ValueError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_report(payload))
    return report_exit_code(payload)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.faults.chaos import run_chaos
    from repro.tools.fault_trace import chaos_report_payload, render_chaos_report

    if args.config not in NAMED_CONFIGS:
        print(f"unknown configuration {args.config!r}; try `list`", file=sys.stderr)
        return 2
    if args.campaign:
        return _cmd_chaos_campaign(args)
    try:
        report = run_chaos(
            seed=args.seed,
            faults=args.faults,
            workload=args.workload,
            config_name=args.config,
            rate=args.rate,
            no_retry=args.no_retry,
            instructions=args.instructions,
            quick=args.quick,
            crashes=args.crash or (),
            jobs=args.jobs,
        )
    except (ConfigError, ValueError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(chaos_report_payload(report), indent=2, sort_keys=True))
    else:
        print(render_chaos_report(report))
    if args.save_trace:
        from repro.replay.recorder import save_chaos_failure

        saved = save_chaos_failure(report, args.save_trace)
        if saved is not None:
            print(f"replayable failure trace written to {saved}", file=sys.stderr)
            # Localize the failure: which component's ordering contract
            # broke, with witness event ids into the saved trace.
            from repro.contracts.checker import check_trace, localized_summary
            from repro.replay.schema import read_trace

            contract_report = check_trace(read_trace(saved))
            print(localized_summary(contract_report), file=sys.stderr)
        else:
            print(
                "no failing run to save (campaign fully certified)",
                file=sys.stderr,
            )
    return _chaos_exit_code(report)


def _cmd_experiments(args: argparse.Namespace) -> int:
    runner = SweepRunner(args.instructions, args.seed, jobs=args.jobs)
    apps = args.apps or list(ALL_APPS)
    if args.name == "figure9":
        __, report = figure9(runner, apps=apps)
    elif args.name == "figure10":
        __, report = figure10(
            instructions=args.instructions, seed=args.seed, apps=apps, jobs=args.jobs
        )
    elif args.name == "figure11":
        __, report = figure11(
            instructions=args.instructions, seed=args.seed, apps=apps, jobs=args.jobs
        )
    elif args.name == "table3":
        __, report = table3(runner, apps=apps)
    elif args.name == "table4":
        __, report = table4(runner, apps=apps)
    else:
        print(f"unknown experiment {args.name!r}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.harness.perf import profile_run

    try:
        print(
            profile_run(
                target=args.target,
                config_name=args.config,
                instructions=args.instructions,
                seed=args.seed,
                top=args.top,
                sort=args.sort,
                as_json=args.json,
            )
        )
    except KeyError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    return 0


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation cells "
        "(1 = serial, 0 = one per CPU); results are bit-identical "
        "to a serial run",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BulkSC reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list applications and configurations")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="simulate one app under one configuration")
    p_run.add_argument("app", help="application name (see `list`)")
    p_run.add_argument("--config", default="BSCdypvt", help="configuration name")
    p_run.add_argument("--json", action="store_true", help="emit JSON")
    p_run.add_argument("--verbose", action="store_true", help="include per-proc stats")
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare configurations on one app")
    p_cmp.add_argument("app")
    p_cmp.add_argument("configs", nargs="*", help="configurations (default RC SC BSCdypvt)")
    _add_common(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_lit = sub.add_parser("litmus", help="run the litmus suite")
    p_lit.add_argument("--config", default="BSCdypvt")
    p_lit.add_argument("--seed", type=int, default=0)
    p_lit.set_defaults(func=_cmd_litmus)

    p_chaos = sub.add_parser(
        "chaos",
        help="run fault-injection campaigns against the commit pipeline",
    )
    p_chaos.add_argument(
        "--faults",
        default="drop,delay,dup",
        help="comma-separated fault list (drop, delay, dup, reorder, "
        "storm, squash, kill-acks, arbiter-crash)",
    )
    p_chaos.add_argument(
        "--crash",
        action="append",
        default=None,
        metavar="POINT:OCC[:TARGET]",
        help="scripted arbiter crash, e.g. grant:1:arbiter0 "
        "(repeatable; applied to every run of the campaign)",
    )
    p_chaos.add_argument(
        "--workload",
        default="litmus",
        choices=["litmus", "synthetic", "mix"],
        help="workload family to chaos-test (default litmus)",
    )
    p_chaos.add_argument("--config", default="BSCdypvt", help="configuration name")
    p_chaos.add_argument(
        "--rate", type=float, default=None, help="override per-message fault rate"
    )
    p_chaos.add_argument(
        "--no-retry",
        action="store_true",
        help="disable bounded retries: the first lost message fails the run",
    )
    p_chaos.add_argument(
        "--quick", action="store_true", help="trimmed campaign for CI smoke runs"
    )
    p_chaos.add_argument("--json", action="store_true", help="emit JSON")
    p_chaos.add_argument(
        "--instructions",
        type=int,
        default=2000,
        help="instructions per thread for synthetic workloads (default 2000)",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_chaos.add_argument(
        "--save-trace",
        default=None,
        metavar="PATH",
        help="re-record the first failing run as a replayable trace; "
        "a PATH ending in .jsonl is a stand-alone file, anything else "
        "is treated as a campaign store directory (trace lands under "
        "PATH/traces/ and is logged in PATH/log.jsonl)",
    )
    p_chaos.add_argument(
        "--campaign",
        default=None,
        metavar="DIR",
        help="run the chaos grid as a durable campaign stored at DIR "
        "(checkpointed, kill -9-safe, resumable via `campaign resume`)",
    )
    _add_jobs(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    from repro.analysis.cli import add_analyze_parser

    add_analyze_parser(sub)

    from repro.replay.cli import add_replay_parser

    add_replay_parser(sub)

    from repro.campaign.cli import add_campaign_parser

    add_campaign_parser(sub)

    from repro.service.cli import add_serve_parser, add_service_parser

    add_serve_parser(sub)
    add_service_parser(sub)

    p_exp = sub.add_parser("experiments", help="regenerate a paper artifact")
    p_exp.add_argument(
        "name",
        choices=["figure9", "figure10", "figure11", "table3", "table4"],
    )
    p_exp.add_argument("--apps", nargs="*", help="app subset (default: all)")
    _add_common(p_exp)
    _add_jobs(p_exp)
    p_exp.set_defaults(func=_cmd_experiments)

    p_prof = sub.add_parser(
        "profile", help="profile the simulator core under cProfile"
    )
    p_prof.add_argument(
        "--target",
        default="litmus",
        choices=["litmus", "synthetic"],
        help="workload to profile (default litmus)",
    )
    p_prof.add_argument("--config", default="BSCdypvt", help="configuration name")
    p_prof.add_argument(
        "--instructions",
        type=int,
        default=4000,
        help="instructions per thread for the synthetic target",
    )
    p_prof.add_argument("--seed", type=int, default=0, help="workload seed")
    p_prof.add_argument(
        "--top", type=int, default=25, help="number of hot functions to print"
    )
    p_prof.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "calls"],
        help="pstats sort order",
    )
    p_prof.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (hot functions + subsystem rollup)",
    )
    p_prof.set_defaults(func=_cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
