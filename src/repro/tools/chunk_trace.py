"""Chunk lifecycle tracing.

Attach a :class:`ChunkTracer` to a BulkSC machine *before* running and it
records every chunk transition — useful both for debugging the protocol
and for understanding a workload's commit/squash pattern:

    machine = Machine(config, programs, space)
    tracer = ChunkTracer.attach(machine)
    machine.run()
    print(tracer.render())

The tracer works by wrapping the driver and commit-engine callbacks; the
simulated machine's behaviour is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.chunk import Chunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import Machine


@dataclass(frozen=True)
class TraceEvent:
    """One chunk transition."""

    time: float
    proc: int
    chunk_id: int
    event: str  # start | close | grant | commit | squash
    detail: str = ""

    def __str__(self) -> str:
        base = f"[{self.time:10.1f}] p{self.proc} chunk#{self.chunk_id:<4d} {self.event}"
        return f"{base} ({self.detail})" if self.detail else base


class ChunkTracer:
    """Records chunk lifecycle events from a BulkSC machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine") -> "ChunkTracer":
        """Instrument a (not yet run) BulkSC machine."""
        from repro.core.driver import BulkSCDriver

        tracer = cls(machine)
        for driver in machine.drivers:
            if isinstance(driver, BulkSCDriver):
                tracer._wrap_driver(driver)
        return tracer

    def _wrap_driver(self, driver) -> None:
        tracer = self

        original_ensure = driver._ensure_chunk

        def traced_ensure():
            had = driver._current is not None
            ok = original_ensure()
            if ok and not had and driver._current is not None:
                tracer._record(driver.proc, driver._current, "start")
            return ok

        driver._ensure_chunk = traced_ensure

        original_close = driver._close_current

        def traced_close(reason):
            chunk = driver._current
            original_close(reason)
            if chunk is not None and not chunk.is_empty:
                tracer._record(driver.proc, chunk, "close", reason)

        driver._close_current = traced_close

        original_granted = driver._on_chunk_granted

        def traced_granted(chunk):
            tracer._record(driver.proc, chunk, "grant")
            original_granted(chunk)

        driver._on_chunk_granted = traced_granted

        original_committed = driver._on_chunk_committed

        def traced_committed(chunk):
            tracer._record(
                driver.proc, chunk, "commit", f"{chunk.instructions} instr"
            )
            original_committed(chunk)

        driver._on_chunk_committed = traced_committed

        original_squash = driver._squash_from

        def traced_squash(oldest, now):
            for chunk in driver.bdm.active_chunks():
                if chunk.is_active and chunk.chunk_id >= oldest.chunk_id:
                    tracer._record(
                        driver.proc, chunk, "squash", f"{chunk.instructions} instr lost"
                    )
            original_squash(oldest, now)

        driver._squash_from = traced_squash

    # ------------------------------------------------------------------
    def _record(self, proc: int, chunk: Chunk, event: str, detail: str = "") -> None:
        self.events.append(
            TraceEvent(self.machine.sim.now, proc, chunk.chunk_id, event, detail)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_proc(self, proc: int) -> List[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def count(self, event: str, proc: Optional[int] = None) -> int:
        return sum(
            1
            for e in self.events
            if e.event == event and (proc is None or e.proc == proc)
        )

    def chunk_lifetime(self, proc: int, chunk_id: int) -> Optional[float]:
        """Cycles from start to commit for one chunk, if it committed."""
        start = commit = None
        for e in self.events:
            if e.proc == proc and e.chunk_id == chunk_id:
                if e.event == "start" and start is None:
                    start = e.time
                elif e.event == "commit":
                    commit = e.time
        if start is None or commit is None:
            return None
        return commit - start

    def render(self, limit: int = 200) -> str:
        """A readable timeline of the first ``limit`` events."""
        lines = [str(e) for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
