"""Chunk lifecycle tracing.

Attach a :class:`ChunkTracer` to a BulkSC machine *before* running and it
records every chunk transition — useful both for debugging the protocol
and for understanding a workload's commit/squash pattern:

    machine = Machine(config, programs, space)
    tracer = ChunkTracer.attach(machine)
    machine.run()
    print(tracer.render())

The tracer instruments the machine through
:func:`repro.replay.recorder.wrap_chunk_events` — the same
behaviour-preserving hook the replay recorder uses — and stores its
observations as versioned :class:`~repro.replay.schema.TraceRecord`
entries.  :class:`TraceEvent` remains as the human-facing *view* of one
record; :meth:`ChunkTracer.as_trace` exports the whole stream as a
schema-valid ``kind="view"`` trace for tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.replay.schema import (
    TRACE_VERSION,
    Trace,
    TraceRecord,
    make_header,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import Machine


@dataclass(frozen=True)
class TraceEvent:
    """One chunk transition — a readable view of a trace record."""

    time: float
    proc: int
    chunk_id: int
    event: str  # start | close | grant | commit | squash
    detail: str = ""

    def __str__(self) -> str:
        base = f"[{self.time:10.1f}] p{self.proc} chunk#{self.chunk_id:<4d} {self.event}"
        return f"{base} ({self.detail})" if self.detail else base

    @classmethod
    def from_record(cls, record: TraceRecord) -> "TraceEvent":
        return cls(
            time=record.t,
            proc=record.p if record.p is not None else -1,
            chunk_id=int(record.data.get("chunk", -1)),
            event=record.ev.split(".", 1)[-1],
            detail=str(record.data.get("detail", "")),
        )


class ChunkTracer:
    """Records chunk lifecycle events from a BulkSC machine.

    The authoritative stream is :attr:`records` (schema
    ``TraceRecord``s with ``ev`` of ``chunk.start`` / ``chunk.close`` /
    ``chunk.grant`` / ``chunk.commit`` / ``chunk.squash``); the query
    API works on :class:`TraceEvent` views of it.
    """

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.records: List[TraceRecord] = []

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine") -> "ChunkTracer":
        """Instrument a (not yet run) BulkSC machine."""
        from repro.replay.recorder import wrap_chunk_events

        tracer = cls(machine)
        wrap_chunk_events(machine, tracer._on_chunk_event)
        return tracer

    def _on_chunk_event(self, proc: int, chunk, event: str, detail: str) -> None:
        data = {"chunk": chunk.chunk_id}
        if detail:
            data["detail"] = detail
        self.records.append(
            TraceRecord(
                seq=len(self.records) + 1,
                t=self.machine.sim.now,
                ev=f"chunk.{event}",
                p=proc,
                data=data,
            )
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """The recorded stream as readable :class:`TraceEvent` views."""
        return [TraceEvent.from_record(r) for r in self.records]

    def as_trace(self, config_name: str = "", seed: int = 0) -> Trace:
        """Export the stream as a schema-valid ``kind="view"`` trace.

        View traces carry no reconstruction guarantee (they only hold
        chunk lifecycle events), but they share the file format with
        full replay traces so the same tooling can parse them.
        """
        header = make_header(
            kind="view",
            config=config_name,
            seed=seed,
            workload={"kind": "view", "source": "ChunkTracer"},
            note=f"chunk lifecycle view (schema v{TRACE_VERSION})",
        )
        footer = {"footer": True, "records": len(self.records)}
        return Trace(header=header, records=list(self.records), footer=footer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_proc(self, proc: int) -> List[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def count(self, event: str, proc: Optional[int] = None) -> int:
        return sum(
            1
            for e in self.events
            if e.event == event and (proc is None or e.proc == proc)
        )

    def chunk_lifetime(self, proc: int, chunk_id: int) -> Optional[float]:
        """Cycles from start to commit for one chunk, if it committed."""
        start = commit = None
        for e in self.events:
            if e.proc == proc and e.chunk_id == chunk_id:
                if e.event == "start" and start is None:
                    start = e.time
                elif e.event == "commit":
                    commit = e.time
        if start is None or commit is None:
            return None
        return commit - start

    def render(self, limit: int = 200) -> str:
        """A readable timeline of the first ``limit`` events."""
        events = self.events
        lines = [str(e) for e in events[:limit]]
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more events")
        return "\n".join(lines)
