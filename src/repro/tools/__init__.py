"""Analysis and debugging tools layered on top of the simulator.

* :mod:`repro.tools.chunk_trace` — record and render per-processor chunk
  lifecycle timelines (start → close → grant → commit / squash).
* :mod:`repro.tools.report` — turn a :class:`~repro.system.RunResult`
  into a human-readable summary.
* :mod:`repro.tools.export` — JSON/CSV export of runs, figure series,
  and table rows for downstream analysis.
"""

from repro.tools.chunk_trace import ChunkTracer, TraceEvent
from repro.tools.export import (
    export_run_json,
    export_series_csv,
    export_table_csv,
    load_run_json,
    run_result_to_dict,
)
from repro.tools.report import summarize_run

__all__ = [
    "ChunkTracer",
    "TraceEvent",
    "summarize_run",
    "export_run_json",
    "export_series_csv",
    "export_table_csv",
    "load_run_json",
    "run_result_to_dict",
]
