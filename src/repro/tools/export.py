"""Export simulation results to JSON and CSV.

Downstream analysis (plotting figures, comparing runs across machines)
wants machine-readable artifacts rather than rendered tables.  These
helpers flatten :class:`~repro.system.RunResult` objects and harness
series into plain files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Mapping, Sequence, Union

from repro.system import RunResult

PathLike = Union[str, Path]


def run_result_to_dict(result: RunResult, include_proc_stats: bool = False) -> Dict:
    """A JSON-serializable summary of one run."""
    stats = {
        name: value
        for name, value in result.stats.items()
        if include_proc_stats or not name.startswith("proc")
    }
    return {
        "model": result.model_name,
        "num_processors": result.config.num_processors,
        "cycles": result.cycles,
        "per_proc_finish": list(result.per_proc_finish),
        "total_instructions": result.total_instructions,
        "traffic_bytes": dict(result.traffic_bytes),
        "stats": stats,
    }


def export_run_json(
    result: RunResult, path: PathLike, include_proc_stats: bool = False
) -> Path:
    """Write one run's summary as JSON; returns the path written."""
    path = Path(path)
    payload = run_result_to_dict(result, include_proc_stats)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def export_series_csv(
    series: Mapping[str, Mapping[str, float]],
    path: PathLike,
    value_name: str = "value",
) -> Path:
    """Write ``{config: {app: value}}`` (a figure series) as tidy CSV.

    One row per (config, app) observation — the layout plotting libraries
    and spreadsheets ingest directly.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["config", "app", value_name])
        for config, values in series.items():
            for app, value in values.items():
                writer.writerow([config, app, value])
    return path


def export_table_csv(
    rows: Sequence[Mapping[str, object]],
    path: PathLike,
) -> Path:
    """Write a list of homogeneous dict rows (e.g. Table 3/4 data) as CSV."""
    path = Path(path)
    rows = list(rows)
    if not rows:
        path.write_text("")
        return path
    fieldnames = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def load_run_json(path: PathLike) -> Dict:
    """Read back a summary written by :func:`export_run_json`."""
    return json.loads(Path(path).read_text())
