"""Human-readable run summaries."""

from __future__ import annotations

from typing import List

from repro.params import ConsistencyModelKind
from repro.system import RunResult


def _line(label: str, value: str) -> str:
    return f"  {label:<32s} {value}"


def summarize_run(result: RunResult) -> str:
    """A compact report of what one simulation did.

    Includes the model-independent basics (cycles, instructions, traffic)
    and, for BulkSC runs, the chunk/commit/squash picture that the paper's
    Tables 3-4 are built from.
    """
    procs = result.config.num_processors
    lines: List[str] = []
    lines.append(f"== {result.model_name} run ==")
    lines.append(_line("cycles", f"{result.cycles:.0f}"))
    lines.append(_line("instructions (retired)", str(result.total_instructions)))
    if result.cycles > 0:
        ipc = result.total_instructions / result.cycles / procs
        lines.append(_line("IPC per processor", f"{ipc:.2f}"))
    total_bytes = sum(result.traffic_bytes.values())
    lines.append(_line("network traffic", f"{total_bytes} bytes"))
    breakdown = ", ".join(
        f"{name}={bytes_}" for name, bytes_ in result.traffic_bytes.items() if bytes_
    )
    lines.append(_line("traffic breakdown", breakdown or "none"))
    if result.config.model is ConsistencyModelKind.BULKSC:
        commits = result.stat("commit.visible")
        empty_w = result.stat("commit.empty_w_commits")
        squashes = sum(result.stat(f"proc{p}.chunk_squashes") for p in range(procs))
        squashed = sum(
            result.stat(f"proc{p}.squashed_instructions") for p in range(procs)
        )
        denials = result.stat("commit.denials")
        lines.append(_line("chunk commits", f"{commits:.0f}"))
        if commits:
            lines.append(
                _line(
                    "empty-W commits",
                    f"{empty_w:.0f} ({100 * empty_w / commits:.0f}%)",
                )
            )
        lines.append(_line("chunk squashes", f"{squashes:.0f}"))
        if result.total_instructions:
            lines.append(
                _line(
                    "squashed instructions",
                    f"{squashed:.0f} "
                    f"({100 * squashed / result.total_instructions:.1f}%)",
                )
            )
        lines.append(_line("commit denials", f"{denials:.0f}"))
        lines.append(
            _line("R signatures transferred", f"{result.stat('commit.r_signatures_sent'):.0f}")
        )
    if result.stat("io.operations"):
        lines.append(_line("I/O operations", f"{result.stat('io.operations'):.0f}"))
    return "\n".join(lines)
