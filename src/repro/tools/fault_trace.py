"""Render fault traces and chaos reports for humans (and CI logs).

The chaos harness produces structured data —
:class:`~repro.faults.chaos.ChaosReport` with per-run records and, on
failure, the injected-fault trace.  This module turns both into the text
the ``chaos`` CLI subcommand prints, and a JSON-able payload for
machine consumption.  Structured fault data uses the versioned replay
trace schema (:mod:`repro.replay.schema`) — the same ``fault`` record
shape the replay recorder emits — so there is one trace format across
the chunk tracer, the chaos harness, and record/replay.
"""

from __future__ import annotations

from typing import List

from repro.faults.chaos import ChaosReport
from repro.faults.injector import FaultRecord
from repro.replay.schema import TraceRecord


def fault_trace_records(trace: List[FaultRecord]) -> List[TraceRecord]:
    """Lift injector fault records into schema ``fault`` trace records.

    The record shape matches what
    :class:`~repro.replay.recorder.TraceRecorder` emits for the same
    fault, so chaos payload consumers and replay-trace consumers parse
    one format.  (Stand-alone fault traces carry no simulated timestamp,
    so ``t`` is 0.)
    """
    return [
        TraceRecord(
            seq=i + 1,
            t=0.0,
            ev="fault",
            p=None,
            data={
                "fault": record.fault,
                "kind": record.kind,
                "channel": record.channel,
                "seq": record.seq,
                "point": record.point,
                "label": record.label,
                "detail": record.detail,
                "extra": record.extra,
                "victims": list(record.victims),
            },
        )
        for i, record in enumerate(trace)
    ]


def render_fault_trace(trace: List[FaultRecord], limit: int = 20) -> str:
    """The last ``limit`` injected faults, newest last."""
    if not trace:
        return "  (no faults were injected)"
    lines = []
    elided = len(trace) - limit
    if elided > 0:
        lines.append(f"  ... {elided} earlier fault(s) elided ...")
    for record in trace[-limit:]:
        lines.append(f"  {record.render()}")
    return "\n".join(lines)


def render_chaos_report(report: ChaosReport) -> str:
    lines = [
        f"chaos campaign: workload={report.workload} config={report.config_name} "
        f"seed={report.seed}",
        f"faults: {report.plan_description} "
        f"(retries {'on' if report.retries_enabled else 'off'})",
        f"runs: {len(report.runs)}   certified: {report.certified}   "
        f"faults injected: {report.total_faults}",
    ]
    if report.crashes_spelling:
        lines.append(
            f"arbiter crashes: {', '.join(report.crashes_spelling)} "
            f"({report.total_crashes} fired)"
        )
    for run in report.runs:
        if run.error is not None:
            status = "ERROR"
        elif not run.sc_certified:
            status = "SC-VIOLATION"
        elif run.forbidden_outcome:
            status = "FORBIDDEN"
        else:
            status = "ok"
        detail = f" [{run.fault_summary}]" if run.faults_injected else ""
        if run.crashes:
            detail += (
                f" crashes={run.crashes} recovery≈{run.recovery_cycles:.0f}cy"
            )
        lines.append(f"  {status:12s} {run.name}{detail}")
        if run.error is not None:
            lines.append(f"    {run.error}")
        elif not run.sc_certified:
            lines.append(f"    {run.sc_reason}")
    error = report.first_error
    if error is not None:
        lines.append("fault trace of the failing run:")
        lines.append(render_fault_trace(report.failure_trace))
        lines.append(f"RESULT: diagnosable failure — {error}")
    elif report.sc_violations:
        lines.append(f"RESULT: {len(report.sc_violations)} run(s) broke SC")
    elif report.all_certified:
        lines.append(
            f"RESULT: SC certified by verify.sc_checker on all "
            f"{len(report.runs)} runs under {report.total_faults} injected faults"
        )
    else:
        lines.append("RESULT: no runs executed")
    return "\n".join(lines)


def chaos_report_payload(report: ChaosReport) -> dict:
    """A JSON-serializable view of the report."""
    return {
        "workload": report.workload,
        "config": report.config_name,
        "seed": report.seed,
        "faults": report.plan_description,
        "retries_enabled": report.retries_enabled,
        "runs": [
            {
                "name": r.name,
                "seed": r.seed,
                "cycles": r.cycles,
                "faults_injected": r.faults_injected,
                "fault_summary": r.fault_summary,
                "sc_certified": r.sc_certified,
                "forbidden_outcome": r.forbidden_outcome,
                "crashes": r.crashes,
                "recovery_cycles": r.recovery_cycles,
                "error": r.error,
            }
            for r in report.runs
        ],
        "crashes": list(report.crashes_spelling),
        "total_crashes": report.total_crashes,
        "total_faults": report.total_faults,
        "certified": report.certified,
        "all_certified": report.all_certified,
        "first_error": report.first_error,
        "failure_trace": [r.render() for r in report.failure_trace],
        "failure_records": [
            r.to_obj() for r in fault_trace_records(report.failure_trace)
        ],
    }
