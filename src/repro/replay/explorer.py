"""Schedule exploration: hunt for final states outside the SC set.

The explorer drives each litmus test through many *dynamic* schedules —
seed sweeps, thread-stagger variation (random-walk through the
interleaving space), and **commit-order permutation**: a wrapper on the
arbiter's ``decide`` forcibly denies the first N otherwise-granted
requests of a chosen processor, reordering chunk commits without
touching protocol state (a denial is a legal arbiter answer; the chunk
simply retries later).

Every observed final state — registers plus the final values of the
test's shared variables — is checked against the *static* SC outcome
set from :func:`repro.analysis.outcomes.enumerate_sc_outcomes` at
``chunk_size=1``.  The containment contract is one-directional and
strict: **dynamic ⊆ static**.  A dynamic state missing from the static
set means a consistency bug in the simulator (or an enumerator bug) —
either way a finding.  The explorer also re-runs the SC witness checker
and the test's forbidden-outcome predicate on every run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.outcomes import enumerate_sc_outcomes
from repro.cpu.thread import ThreadProgram
from repro.errors import ProgramError, ReproError
from repro.params import NAMED_CONFIGS
from repro.replay.workload import build_workload, litmus_addresses, litmus_spec
from repro.verify.litmus import all_litmus_tests
from repro.verify.sc_checker import check_sequential_consistency

#: Thread staggers swept per seed (mirrors the chaos/litmus harnesses).
STAGGERS: Tuple[Tuple[int, ...], ...] = ((1, 1), (1, 60), (60, 1), (200, 7))
QUICK_STAGGERS: Tuple[Tuple[int, ...], ...] = ((1, 1), (60, 1))

#: Event budget per exploration run.
EXPLORE_MAX_EVENTS = 2_000_000

_StateKey = Tuple[tuple, tuple]


@dataclass
class ExploreTestResult:
    """Exploration outcome for one litmus test."""

    name: str
    static_states: int = 0
    dynamic_states: int = 0
    runs: int = 0
    #: Dynamic final states absent from the static SC set (descriptions).
    new_states: List[str] = field(default_factory=list)
    #: Runs whose history failed the SC witness check.
    sc_failures: List[str] = field(default_factory=list)
    #: Runs that hit the test's SC-forbidden register outcome.
    forbidden_runs: List[str] = field(default_factory=list)
    #: Runs that raised a typed ReproError (budget blown, protocol bug).
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.new_states or self.sc_failures or self.forbidden_runs or self.errors
        )


@dataclass
class ExploreReport:
    """Results of a whole exploration sweep."""

    config_name: str
    seeds: Tuple[int, ...]
    max_denials: int
    results: List[ExploreTestResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    @property
    def total_runs(self) -> int:
        return sum(r.runs for r in self.results)

    def describe(self) -> str:
        lines = [
            f"schedule exploration under {self.config_name} "
            f"(seeds {list(self.seeds)}, ≤{self.max_denials} forced denials):"
        ]
        for r in self.results:
            status = "ok" if r.ok else "FINDINGS"
            lines.append(
                f"  {r.name:6s} {status:8s} runs={r.runs:<3d} "
                f"dynamic states {r.dynamic_states}/{r.static_states} static"
            )
            for s in r.new_states:
                lines.append(f"    NEW STATE (not SC-enumerable): {s}")
            for s in r.sc_failures:
                lines.append(f"    SC WITNESS FAILURE: {s}")
            for s in r.forbidden_runs:
                lines.append(f"    FORBIDDEN OUTCOME: {s}")
            for s in r.errors:
                lines.append(f"    ERROR: {s}")
        lines.append(
            f"RESULT: {'all dynamic states ⊆ static SC sets' if self.ok else 'FINDINGS — see above'}"
            f" ({self.total_runs} runs)"
        )
        return "\n".join(lines)


def force_denials(machine, denials: Dict[int, int]) -> None:
    """Wrap the arbiter to deny the first N grants per processor.

    The wrapper turns would-be grants into denials — a response the
    protocol already handles via retry — so commit order is permuted
    without ever forging a grant or touching arbiter bookkeeping
    (``decide`` is stateless; admission happens separately).  Works for
    both the central and the distributed arbiter because it rewrites the
    decision object it got, whatever its dataclass.
    """
    arbiter = machine.arbiter
    if arbiter is None:
        return
    remaining = dict(denials)
    original_decide = arbiter.decide

    def perturbed_decide(proc, *args, **kwargs):
        decision = original_decide(proc, *args, **kwargs)
        if decision.granted and remaining.get(proc, 0) > 0:
            remaining[proc] -= 1
            return dataclasses.replace(
                decision, granted=False, reason="explorer forced denial"
            )
        return decision

    arbiter.decide = perturbed_decide


def _static_key(state) -> _StateKey:
    regs = state.registers
    mem = tuple(sorted((a, v) for a, v in state.memory if v != 0))
    return (regs, mem)


def _dynamic_key(registers, memory, num_threads: int, addrs: Iterable[int]) -> _StateKey:
    regs = tuple(
        tuple(sorted(registers.get(t, {}).items())) for t in range(num_threads)
    )
    mem = []
    for addr in sorted(set(addrs)):
        value = memory.peek(addr)
        if value != 0:
            mem.append((addr, value))
    return (regs, tuple(mem))


def _perturbation_schedules(
    num_threads: int, max_denials: int
) -> List[Dict[int, int]]:
    schedules: List[Dict[int, int]] = []
    for proc in range(num_threads):
        for n in range(1, max_denials + 1):
            schedules.append({proc: n})
    return schedules


def explore(
    litmus: str = "all",
    config_name: str = "BSCdypvt",
    seeds: Sequence[int] = (0, 1),
    max_denials: int = 2,
    quick: bool = False,
) -> ExploreReport:
    """Sweep schedules for each litmus test and cross-validate statically."""
    from repro.system import Machine

    if config_name not in NAMED_CONFIGS:
        raise ProgramError(f"unknown configuration {config_name!r}")
    tests = all_litmus_tests()
    if litmus != "all":
        tests = [t for t in tests if t.name == litmus]
        if not tests:
            known = ", ".join(t.name for t in all_litmus_tests())
            raise ProgramError(f"unknown litmus test {litmus!r} (known: {known})")
    seeds = tuple(seeds)
    staggers = QUICK_STAGGERS if quick else STAGGERS
    report = ExploreReport(
        config_name=config_name, seeds=seeds, max_denials=max_denials
    )
    for test in tests:
        result = ExploreTestResult(name=test.name)
        report.results.append(result)
        # Static side: enumerate the full SC outcome set over the *same*
        # addresses the dynamic harness allocates (allocation is a pure
        # function of the memory geometry, so every run agrees on them).
        base_config = NAMED_CONFIGS[config_name](seed=seeds[0])
        __, addrs = litmus_addresses(test, base_config)
        bare_programs = [
            ThreadProgram(ops, name=f"t{i}")
            for i, ops in enumerate(test.build(addrs))
        ]
        enumeration = enumerate_sc_outcomes(bare_programs, chunk_size=1)
        static_keys: Set[_StateKey] = {
            _static_key(s) for s in enumeration.final_states
        }
        static_addrs = {a for s in enumeration.final_states for a, __ in s.memory}
        static_addrs.update(addrs.values())
        result.static_states = len(static_keys)
        num_threads = len(bare_programs)
        # Dynamic side: seed × stagger sweep plus commit-order
        # perturbations at the arbiter.
        runs: List[Tuple[str, int, Tuple[int, ...], Optional[Dict[int, int]]]] = []
        for seed in seeds:
            for stagger in staggers:
                runs.append((f"s{seed}/g{'-'.join(map(str, stagger))}", seed,
                             stagger, None))
        schedules = _perturbation_schedules(
            num_threads, 1 if quick else max_denials
        )
        for denials in schedules:
            label = ",".join(f"P{p}x{n}" for p, n in denials.items())
            runs.append((f"s{seeds[0]}/deny[{label}]", seeds[0], staggers[0],
                         denials))
        observed: Set[_StateKey] = set()
        for run_label, seed, stagger, denials in runs:
            result.runs += 1
            config = NAMED_CONFIGS[config_name](seed=seed)
            programs, space, __ = build_workload(
                litmus_spec(test.name, stagger), config
            )
            machine = Machine(config, programs, space, record_history=True)
            if denials:
                force_denials(machine, denials)
            try:
                run = machine.run(max_events=EXPLORE_MAX_EVENTS)
            except ReproError as exc:
                result.errors.append(
                    f"{run_label}: {type(exc).__name__}: {exc}"
                )
                continue
            key = _dynamic_key(
                run.registers, machine.memory, num_threads, static_addrs
            )
            if key not in observed:
                observed.add(key)
                if key not in static_keys:
                    result.new_states.append(f"{run_label}: {key}")
            check = check_sequential_consistency(run.history)
            if not check.ok:
                result.sc_failures.append(f"{run_label}: {check.reason}")
            if test.forbidden(run.registers):
                result.forbidden_runs.append(run_label)
        result.dynamic_states = len(observed)
    return report


def explore_payload(report: ExploreReport) -> dict:
    """JSON-serializable view of an exploration report."""
    return {
        "config": report.config_name,
        "seeds": list(report.seeds),
        "max_denials": report.max_denials,
        "ok": report.ok,
        "total_runs": report.total_runs,
        "tests": [
            {
                "name": r.name,
                "ok": r.ok,
                "runs": r.runs,
                "static_states": r.static_states,
                "dynamic_states": r.dynamic_states,
                "new_states": r.new_states,
                "sc_failures": r.sc_failures,
                "forbidden_runs": r.forbidden_runs,
                "errors": r.errors,
            }
            for r in report.results
        ],
    }
