"""Failure minimization: delta-debug a failing trace to a minimal repro.

A failing chaos/fault trace usually contains far more injected faults
than the failure needs.  The minimizer shrinks it in three steps:

1. **Scripting** — the trace's ``fault`` records are lifted into an
   explicit ``{seq: fault}`` schedule (the injection points are
   numbered by the injector's per-channel sequence counters), and the
   run is re-driven under a
   :class:`~repro.faults.injector.ScriptedFaultInjector`.  This must
   reproduce the failure — it is the same fault schedule, minus the
   randomness that generated it.
2. **ddmin over faults** — classic delta debugging (Zeller's ddmin)
   over the fault schedule: try subsets and complements with
   progressively finer partitions until the schedule is 1-minimal
   (removing any single fault makes the failure vanish).
3. **Thread dropping** — greedily try emptying each thread's program
   (highest index first); keep a drop when the shrunken workload still
   fails under the current schedule.

The winner is re-recorded as a ``kind="minimized"`` trace whose header
carries the fault script, so ``replay run`` re-drives it exactly and
``replay minimize`` output is itself a rerunnable artifact.

"Still fails" means the same failure *class* as the original trace: a
typed :class:`~repro.errors.ReproError` if the original errored, else
an SC-witness failure or forbidden litmus outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.replay.recorder import RecordedRun, record_run
from repro.replay.schema import Trace

#: One scripted fault entry: (channel, seq, payload-dict).
_FaultEntry = Tuple[str, int, dict]


class MinimizeError(ReproError):
    """The failing trace could not be minimized (e.g. not reproducible)."""


@dataclass
class MinimizeResult:
    """Outcome of minimizing one failing trace."""

    original_faults: int
    minimized_faults: int
    dropped_threads: List[int]
    runs_tested: int
    trace: Trace
    error: Optional[str]

    @property
    def strictly_smaller(self) -> bool:
        return self.minimized_faults < self.original_faults or bool(
            self.dropped_threads
        )

    def describe(self) -> str:
        return (
            f"minimized {self.original_faults} -> {self.minimized_faults} "
            f"fault(s), dropped threads {self.dropped_threads or 'none'}, "
            f"{self.runs_tested} candidate runs; failure: "
            f"{self.error or 'SC violation / forbidden outcome'}"
        )


def _fault_entries(trace: Trace) -> List[_FaultEntry]:
    entries: List[_FaultEntry] = []
    for record in trace.fault_records:
        data = record.data
        channel = str(data.get("channel", "deliver"))
        seq = int(data.get("seq", -1))
        if seq < 0:
            continue  # legacy record without sequencing — cannot script it
        if channel == "deliver":
            payload = {"kind": data["kind"], "extra": float(data.get("extra", 0.0))}
        elif channel == "crash":
            # seq is the per-point occurrence; detail is the target name.
            payload = {"point": str(data.get("point")), "target": str(data["detail"])}
        else:
            payload = {"victims": list(data.get("victims", ()))}
        entries.append((channel, seq, payload))
    return entries


def _script_from(entries: Sequence[_FaultEntry]) -> dict:
    script: Dict[str, dict] = {"deliver": {}, "storm": {}, "squash": {}, "crash": {}}
    for channel, seq, payload in entries:
        if channel == "deliver":
            script["deliver"][str(seq)] = payload
        elif channel == "crash":
            script["crash"][f"{payload['point']}:{seq}"] = payload["target"]
        else:
            script[channel][str(seq)] = payload["victims"]
    return script


class _Minimizer:
    def __init__(self, trace: Trace, budget: int):
        trace.validate()
        self.trace = trace
        self.header = trace.header
        self.budget = budget
        self.runs_tested = 0
        original_error = trace.footer.get("error")
        #: Failure class: a typed error, or an SC/forbidden wrong answer.
        self.expect_error = original_error is not None

    def _fails(self, run: RecordedRun) -> bool:
        if self.expect_error:
            return run.error is not None
        return run.failed

    def _try(self, entries: Sequence[_FaultEntry], dropped: Sequence[int]) -> bool:
        if self.runs_tested >= self.budget:
            return False
        self.runs_tested += 1
        run = self._record(entries, dropped)
        return self._fails(run)

    def _record(
        self, entries: Sequence[_FaultEntry], dropped: Sequence[int],
        kind: str = "run",
    ) -> RecordedRun:
        spec = dict(self.header["workload"])
        if dropped:
            spec["dropped_threads"] = sorted(dropped)
        else:
            spec.pop("dropped_threads", None)
        faults_meta = self.header.get("faults") or {}
        return record_run(
            spec=spec,
            config_name=self.header["config"],
            seed=self.header["seed"],
            no_retry=bool(faults_meta.get("no_retry")),
            fault_script=_script_from(entries),
            max_events=self.header.get("max_events") or 2_000_000,
            kind=kind,
        )

    # ------------------------------------------------------------------
    def _ddmin(self, entries: List[_FaultEntry]) -> List[_FaultEntry]:
        """Zeller's ddmin: reduce to a 1-minimal failing subset."""
        n = 2
        while len(entries) >= 2:
            chunk = max(1, len(entries) // n)
            subsets = [
                entries[i:i + chunk] for i in range(0, len(entries), chunk)
            ]
            reduced = False
            for i, subset in enumerate(subsets):
                if self._try(subset, ()):
                    entries = list(subset)
                    n = 2
                    reduced = True
                    break
                complement = [
                    e for j, s in enumerate(subsets) if j != i for e in s
                ]
                if complement and len(complement) < len(entries) and self._try(
                    complement, ()
                ):
                    entries = complement
                    n = max(2, n - 1)
                    reduced = True
                    break
            if not reduced:
                if n >= len(entries):
                    break
                n = min(len(entries), 2 * n)
            if self.runs_tested >= self.budget:
                break
        if len(entries) == 1 and self._try([], ()):
            # Degenerate: the workload fails with no faults at all.
            return []
        return entries

    def _drop_threads(
        self, entries: List[_FaultEntry]
    ) -> List[int]:
        spec = self.header["workload"]
        if spec.get("kind") == "litmus":
            from repro.replay.workload import _find_litmus

            num_threads = len(_find_litmus(spec["test"]).build(
                {var: 0 for var in _find_litmus(spec["test"]).variables}
            ))
        else:
            num_threads = len(self.trace.footer.get("registers", {}))
        dropped: List[int] = list(spec.get("dropped_threads", ()))
        for proc in reversed(range(num_threads)):
            if proc in dropped:
                continue
            candidate = sorted(dropped + [proc])
            if len(candidate) >= num_threads:
                continue  # keep at least one live thread
            if self._try(entries, candidate):
                dropped = candidate
        return dropped

    # ------------------------------------------------------------------
    def minimize(self) -> MinimizeResult:
        entries = _fault_entries(self.trace)
        original_faults = len(self.trace.fault_records)
        # Step 0: the scripted full schedule must reproduce the failure.
        baseline = self._record(entries, self.header["workload"].get(
            "dropped_threads", ()
        ))
        self.runs_tested += 1
        if not self._fails(baseline):
            raise MinimizeError(
                "scripted re-run of the full fault schedule did not "
                "reproduce the failure — the trace is not minimizable "
                f"(original: {self.trace.footer.get('error') or 'SC failure'}, "
                f"scripted: {baseline.error or 'clean'})"
            )
        entries = self._ddmin(entries)
        dropped = self._drop_threads(entries)
        final = self._record(entries, dropped, kind="minimized")
        if not self._fails(final):  # pragma: no cover - ddmin guarantees this
            raise MinimizeError("minimized candidate stopped failing on re-run")
        return MinimizeResult(
            original_faults=original_faults,
            minimized_faults=len(entries),
            dropped_threads=list(dropped),
            runs_tested=self.runs_tested,
            trace=final.trace,
            error=final.error,
        )


def minimize_trace(trace: Trace, budget: int = 200) -> MinimizeResult:
    """Delta-debug a failing trace down to a minimal rerunnable repro.

    Args:
        trace: A trace whose footer records a failure (typed error, SC
            witness failure, or forbidden litmus outcome).
        budget: Maximum candidate runs to test (each is a full, bounded
            simulation; litmus-scale runs are milliseconds).

    Raises:
        MinimizeError: If the trace does not record a failure, or the
            scripted fault schedule fails to reproduce it.
    """
    failed = (
        trace.footer.get("error") is not None
        or trace.footer.get("sc_ok") is False
        or bool(trace.footer.get("forbidden"))
    )
    if not failed:
        raise MinimizeError(
            "trace records a passing run; nothing to minimize"
        )
    return _Minimizer(trace, budget).minimize()
