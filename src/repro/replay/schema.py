"""The versioned JSONL trace format (schema, writer, reader).

A trace file is line-delimited JSON with exactly three kinds of lines:

1. **Header** (first line): run identity — schema name + version, trace
   kind, configuration name, seed, workload spec, fault metadata — i.e.
   everything needed to *reconstruct* the run from scratch.
2. **Records** (middle lines): one per observed scheduling decision or
   protocol transition, with a contiguous sequence number, simulated
   time, event kind, optional processor, and a small data payload.
3. **Footer** (last line): outcome summary — final memory image,
   per-thread registers, SC verdict, error, cycles, RNG draw counts,
   full stats snapshot — used by replay to cross-check end state even
   when the record stream matches.

Schema version policy: ``TRACE_VERSION`` bumps on any change to the
meaning or shape of existing fields; readers reject traces whose version
they do not understand (no silent best-effort parsing — a trace is a
correctness artifact).  Adding new *optional* header/footer keys or new
record ``ev`` kinds is backward compatible and does not bump the
version.  This reader accepts every version in
:data:`SUPPORTED_VERSIONS`; v2 added the arbiter crash-recovery records
(``arb.crash``/``arb.reconstruct``/``arb.recovered``), the ``crash``
fault channel, and the optional ``crashes`` header key — v1 traces are
a strict subset and still read.

Record event kinds currently emitted:

==================  =====================================================
``chunk.start``     driver opened a new chunk
``chunk.close``     chunk completed and queued for commit (reason)
``chunk.grant``     grant message reached the processor
``chunk.commit``    chunk committed at the processor
``chunk.squash``    chunk squashed (instructions lost)
``arb.grant``       arbiter granted a permission-to-commit request
``arb.deny``        arbiter denied a request (reason)
``arb.need_r``      RSig second round: arbiter asked for R
``commit.serialize`` chunk serialized at the arbiter's grant instant
``inv.deliver``     committed W delivered to a victim processor
``dir.expand``      a directory BDM expanded a committed W signature
``fault``           the injector perturbed a message or protocol step
``arb.crash``       an arbiter incarnation crash-stopped (v2)
``arb.reconstruct`` the new epoch re-admitted surviving commits (v2)
``arb.recovered``   reconstruction drained; normal service resumed (v2)
==================  =====================================================

Several records carry optional enriched data fields consumed by the
per-component contract checkers (:mod:`repro.contracts`) — all additions
under the backward-compatible "new optional data fields" rule, so the
version stays 2: ``commit.serialize`` adds ``epoch`` (grant lease),
``ops`` (the chunk's program-order op log as ``[is_store, word, value,
program_index]`` rows), and ``w_lines``/``r_lines`` (true line
footprints); ``chunk.grant`` adds ``epoch``; ``inv.deliver`` adds
``commit``, ``w_lines``, and the independently recomputed
``sig_conflicts``/``true_conflicts`` chunk-id sets.  Traces recorded
before these fields existed still read and replay; contract checkers
report the affected clauses as *unevaluable* rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

TRACE_SCHEMA = "repro-trace"
TRACE_VERSION = 2

#: Versions this reader understands (v1 traces lack recovery records).
SUPPORTED_VERSIONS = (1, 2)

#: Record cap per trace: bounded artifacts, exact counts in the footer.
MAX_RECORDS = 250_000

_REQUIRED_HEADER_KEYS = ("schema", "version", "kind", "config", "seed", "workload")
_KNOWN_KINDS = ("run", "chaos", "minimized", "view")


class TraceValidationError(ReproError):
    """A trace file violated the schema (corrupt, truncated, or foreign)."""


@dataclass(frozen=True)
class TraceRecord:
    """One observed event in a recorded run."""

    seq: int
    t: float
    ev: str
    p: Optional[int] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_obj(self) -> dict:
        return {"seq": self.seq, "t": self.t, "ev": self.ev, "p": self.p,
                "data": self.data}

    @classmethod
    def from_obj(cls, obj: dict) -> "TraceRecord":
        try:
            return cls(
                seq=int(obj["seq"]),
                t=float(obj["t"]),
                ev=str(obj["ev"]),
                p=obj.get("p"),
                data=dict(obj.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceValidationError(f"malformed trace record {obj!r}: {exc}")

    def render(self) -> str:
        who = f" p{self.p}" if self.p is not None else ""
        detail = ""
        if self.data:
            detail = " " + " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.t:>10.1f}]{who} {self.ev}{detail}"


def make_header(
    kind: str,
    config: str,
    seed: int,
    workload: dict,
    faults: Optional[dict] = None,
    fault_script: Optional[dict] = None,
    max_events: Optional[int] = None,
    note: str = "",
    crashes: Optional[list] = None,
) -> dict:
    """Build a schema-complete trace header.

    ``faults`` describes a seeded :class:`~repro.faults.plan.FaultPlan`
    (``spelling``, ``rate``, ``no_retry``, ``injector_seed``,
    ``injector_label``); ``fault_script`` is an explicit ``{seq: fault}``
    schedule for a :class:`~repro.faults.injector.ScriptedFaultInjector`.
    A trace carries at most one of the two.  ``crashes`` (v2) lists
    scripted arbiter-crash points in their canonical
    ``POINT:OCCURRENCE:TARGET`` spelling; it composes with either.
    """
    header = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_VERSION,
        "kind": kind,
        "config": config,
        "seed": seed,
        "workload": workload,
        "faults": faults,
        "fault_script": fault_script,
        "max_events": max_events,
    }
    if crashes:
        header["crashes"] = list(crashes)
    if note:
        header["note"] = note
    return header


@dataclass
class Trace:
    """A parsed (or freshly recorded) trace: header + records + footer."""

    header: dict
    records: List[TraceRecord]
    footer: dict

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Strict structural validation; raises :class:`TraceValidationError`."""
        for key in _REQUIRED_HEADER_KEYS:
            if key not in self.header:
                raise TraceValidationError(f"trace header missing {key!r}")
        if self.header["schema"] != TRACE_SCHEMA:
            raise TraceValidationError(
                f"not a {TRACE_SCHEMA} file (schema={self.header['schema']!r})"
            )
        if self.header["version"] not in SUPPORTED_VERSIONS:
            raise TraceValidationError(
                f"unsupported trace version {self.header['version']!r} "
                f"(this reader understands versions "
                f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)})"
            )
        if self.header["kind"] not in _KNOWN_KINDS:
            raise TraceValidationError(
                f"unknown trace kind {self.header['kind']!r}"
            )
        faults = self.header.get("faults") or {}
        if faults.get("spelling") and self.header.get("fault_script"):
            # A faults dict without a spelling only records resilience
            # settings (no_retry) and is fine next to a script.
            raise TraceValidationError(
                "trace carries both a fault plan and a fault script"
            )
        for i, record in enumerate(self.records):
            if record.seq != i + 1:
                raise TraceValidationError(
                    f"record sequence broken at index {i}: expected seq "
                    f"{i + 1}, found {record.seq}"
                )
        if not self.footer.get("footer"):
            raise TraceValidationError("trace footer missing or mis-tagged")
        declared = self.footer.get("records")
        if declared is not None and declared != len(self.records):
            raise TraceValidationError(
                f"footer declares {declared} records, file holds "
                f"{len(self.records)}"
            )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.header["kind"]

    @property
    def fault_records(self) -> List[TraceRecord]:
        return [r for r in self.records if r.ev == "fault"]

    def describe(self) -> str:
        h, f = self.header, self.footer
        lines = [
            f"{TRACE_SCHEMA} v{h['version']} kind={h['kind']} "
            f"config={h['config']} seed={h['seed']}",
            f"workload: {h['workload']}",
        ]
        if h.get("faults"):
            lines.append(f"faults: {h['faults']}")
        if h.get("fault_script"):
            script = h["fault_script"]
            sizes = {k: len(v) for k, v in script.items() if v}
            lines.append(f"fault script: {sizes}")
        if h.get("crashes"):
            lines.append(f"crashes: {', '.join(h['crashes'])}")
        lines.append(
            f"records: {len(self.records)}   cycles: {f.get('cycles')}   "
            f"faults injected: {f.get('total_faults')}"
        )
        status = "error: " + f["error"] if f.get("error") else (
            "sc_ok=" + str(f.get("sc_ok"))
        )
        lines.append(f"outcome: {status}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------

def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_trace(trace: Trace, path: str) -> None:
    """Write a trace as JSONL (header, records, footer); validates first."""
    trace.validate()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_dumps(trace.header) + "\n")
        for record in trace.records:
            fh.write(_dumps(record.to_obj()) + "\n")
        fh.write(_dumps(trace.footer) + "\n")


def read_trace(path: str) -> Trace:
    """Parse and strictly validate a trace file."""
    header: Optional[dict] = None
    footer: Optional[dict] = None
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceValidationError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                )
            if not isinstance(obj, dict):
                raise TraceValidationError(
                    f"{path}:{lineno}: expected a JSON object"
                )
            if header is None:
                header = obj
                continue
            if footer is not None:
                raise TraceValidationError(
                    f"{path}:{lineno}: content after the footer line"
                )
            if obj.get("footer"):
                footer = obj
                continue
            records.append(TraceRecord.from_obj(obj))
    if header is None:
        raise TraceValidationError(f"{path}: empty trace file")
    if footer is None:
        raise TraceValidationError(f"{path}: truncated trace (no footer line)")
    trace = Trace(header=header, records=records, footer=footer)
    trace.validate()
    return trace
