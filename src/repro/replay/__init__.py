"""Deterministic record/replay, schedule exploration, and minimization.

Every simulation in this repo is a pure function of ``(seed, config,
workload, fault plan)``, which makes three powerful tools cheap:

* **record** (:mod:`repro.replay.recorder`) — run a workload with a
  :class:`~repro.replay.recorder.TraceRecorder` attached and save every
  scheduling decision and protocol transition as a versioned JSONL trace
  (:mod:`repro.replay.schema`);
* **replay** (:mod:`repro.replay.replayer`) — re-drive the machine from
  a trace's header and assert, record by record, that the execution does
  not diverge, with a precise first-divergence diagnostic;
* **explore** (:mod:`repro.replay.explorer`) — sweep seeds, thread
  staggers, and arbiter commit-order perturbations hunting for final
  states outside the static SC enumeration of
  :mod:`repro.analysis.outcomes`;
* **minimize** (:mod:`repro.replay.minimizer`) — delta-debug a failing
  trace's fault schedule (and thread set) down to a minimal, still
  failing, rerunnable trace.

The CLI surface is ``python -m repro replay record|run|explore|minimize``.
"""

from repro.replay.schema import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    Trace,
    TraceRecord,
    TraceValidationError,
    make_header,
    read_trace,
    write_trace,
)
from repro.replay.recorder import RecordedRun, TraceRecorder, record_run
from repro.replay.replayer import ReplayDivergence, ReplayResult, replay_trace
from repro.replay.explorer import ExploreReport, explore
from repro.replay.minimizer import MinimizeResult, minimize_trace

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "Trace",
    "TraceRecord",
    "TraceValidationError",
    "make_header",
    "read_trace",
    "write_trace",
    "RecordedRun",
    "TraceRecorder",
    "record_run",
    "ReplayDivergence",
    "ReplayResult",
    "replay_trace",
    "ExploreReport",
    "explore",
    "MinimizeResult",
    "minimize_trace",
]
