"""Replay: re-drive a machine from a trace and assert no divergence.

Determinism is the contract: a trace header fully determines its run,
so replay is *re-execution plus equality checking*, not event-queue
puppetry.  The replayer rebuilds the machine from the header (config,
seed, workload spec, fault plan or fault script), runs it with a fresh
recorder attached, and then compares

1. the **record streams**, event by event — the first mismatch yields a
   :class:`ReplayDivergence` naming the sequence number, both records,
   and the RNG draw counts on each side (so a divergence can be chased
   to the exact draw where the executions split); and
2. the **footers** — final memory image, registers, cycles, SC verdict,
   error, fault and draw counts, and the full stats snapshot — which
   catches any difference the event stream is too coarse to see.

``replay --check`` additionally re-runs the SC checker on the replayed
history (the recorder does this as part of footer construction) and
surfaces the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.replay.recorder import (
    DEFAULT_MAX_EVENTS,
    RecordedRun,
    record_run,
)
from repro.replay.schema import Trace, TraceRecord

#: Footer keys compared field-by-field after the record streams match.
_FOOTER_KEYS = (
    "cycles",
    "final_memory",
    "registers",
    "io_log",
    "sc_ok",
    "forbidden",
    "error",
    "rng_draws",
    "injector_draws",
    "total_faults",
    "records",
)


@dataclass(frozen=True)
class ReplayDivergence:
    """The first point where the replayed event stream left the trace."""

    index: int  # 0-based index into the record streams
    recorded: Optional[TraceRecord]
    replayed: Optional[TraceRecord]
    recorded_draws: int
    replayed_draws: int

    def describe(self) -> str:
        lines = [f"first divergence at record {self.index + 1}:"]
        lines.append(
            "  recorded: "
            + (self.recorded.render() if self.recorded else "<stream ended>")
        )
        lines.append(
            "  replayed: "
            + (self.replayed.render() if self.replayed else "<stream ended>")
        )
        lines.append(
            f"  rng draws at end of run: recorded={self.recorded_draws} "
            f"replayed={self.replayed_draws}"
        )
        return "\n".join(lines)


@dataclass
class ReplayResult:
    """Outcome of replaying one trace."""

    trace: Trace
    replayed: RecordedRun
    divergence: Optional[ReplayDivergence] = None
    footer_mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.footer_mismatches

    @property
    def sc_ok(self) -> Optional[bool]:
        return self.replayed.sc_ok

    def describe(self) -> str:
        if self.ok:
            f = self.trace.footer
            outcome = (
                f"error reproduced ({f['error']})"
                if f.get("error")
                else f"sc_ok={f.get('sc_ok')}"
            )
            return (
                f"replay OK: {len(self.trace.records)} records matched, "
                f"{outcome}"
            )
        lines = ["replay DIVERGED:"]
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        for mismatch in self.footer_mismatches:
            lines.append(f"  footer mismatch: {mismatch}")
        return "\n".join(lines)


def replay_trace(trace: Trace) -> ReplayResult:
    """Re-run a trace's workload and verify divergence-free execution."""
    trace.validate()
    header = trace.header
    replayed = record_run(
        spec=header["workload"],
        config_name=header["config"],
        seed=header["seed"],
        faults=(header.get("faults") or {}).get("spelling"),
        rate=(header.get("faults") or {}).get("rate"),
        no_retry=bool((header.get("faults") or {}).get("no_retry")),
        injector_seed=(header.get("faults") or {}).get("injector_seed"),
        injector_label=(header.get("faults") or {}).get("injector_label"),
        fault_script=header.get("fault_script"),
        max_events=header.get("max_events") or DEFAULT_MAX_EVENTS,
        kind=header["kind"],
        crashes=header.get("crashes"),
    )
    result = ReplayResult(trace=trace, replayed=replayed)
    recorded_draws = int(trace.footer.get("rng_draws", -1))
    replayed_draws = int(replayed.trace.footer.get("rng_draws", -1))
    old, new = trace.records, replayed.trace.records
    for i in range(max(len(old), len(new))):
        a = old[i] if i < len(old) else None
        b = new[i] if i < len(new) else None
        if a != b:
            result.divergence = ReplayDivergence(
                index=i,
                recorded=a,
                replayed=b,
                recorded_draws=recorded_draws,
                replayed_draws=replayed_draws,
            )
            break
    for key in _FOOTER_KEYS:
        a, b = trace.footer.get(key), replayed.trace.footer.get(key)
        if a != b:
            result.footer_mismatches.append(f"{key}: recorded={a!r} replayed={b!r}")
    stats_a = trace.footer.get("stats", {})
    stats_b = replayed.trace.footer.get("stats", {})
    if stats_a != stats_b:
        for name in sorted(set(stats_a) | set(stats_b)):
            if stats_a.get(name) != stats_b.get(name):
                result.footer_mismatches.append(
                    f"stats[{name}]: recorded={stats_a.get(name)!r} "
                    f"replayed={stats_b.get(name)!r}"
                )
                break
    return result
