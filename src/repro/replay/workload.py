"""Workload specs: pure-data descriptions of what a trace ran.

A trace header must make its run reconstructible, so the workload is
stored as a small JSON dict rather than live program objects:

* ``{"kind": "litmus", "test": "SB", "stagger": [1, 60]}`` — one litmus
  test with the chaos/litmus harness's compute-stagger preamble;
* ``{"kind": "app", "app": "fft", "instructions": 2000, "seed": 0}`` —
  a bundled synthetic application.

Both accept ``"dropped_threads": [..]``, used by the minimizer: a
dropped thread's program is replaced with an empty one, shrinking the
repro while keeping processor numbering (and thus addresses and labels)
stable.

:func:`build_workload` replicates the construction used by the chaos
and litmus harnesses exactly — same address allocation order, same
stagger preamble — so a spec recorded from either reproduces the very
same programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.isa import Compute
from repro.cpu.thread import ThreadProgram
from repro.errors import ProgramError
from repro.memory.address import AddressMap, AddressSpace
from repro.params import SystemConfig


def litmus_spec(
    test_name: str,
    stagger: Sequence[int],
    dropped_threads: Sequence[int] = (),
) -> dict:
    spec = {"kind": "litmus", "test": test_name, "stagger": list(stagger)}
    if dropped_threads:
        spec["dropped_threads"] = sorted(dropped_threads)
    return spec


def app_spec(
    app: str,
    instructions: int,
    seed: int,
    dropped_threads: Sequence[int] = (),
) -> dict:
    spec = {"kind": "app", "app": app, "instructions": instructions, "seed": seed}
    if dropped_threads:
        spec["dropped_threads"] = sorted(dropped_threads)
    return spec


def workload_name(spec: dict) -> str:
    if spec.get("kind") == "litmus":
        stagger = "-".join(str(s) for s in spec.get("stagger", ()))
        name = f"litmus:{spec['test']}/g{stagger}" if stagger else f"litmus:{spec['test']}"
    elif spec.get("kind") == "app":
        name = f"app:{spec['app']}/i{spec['instructions']}"
    elif spec.get("kind") == "contracts":
        # Static contract check of a recorded trace (no simulation).
        name = f"contracts:{spec.get('component', 'all')}@{spec.get('trace')}"
    else:
        name = f"workload:{spec}"
    dropped = spec.get("dropped_threads")
    if dropped:
        name += f"/drop{','.join(str(t) for t in dropped)}"
    return name


def _find_litmus(test_name: str):
    from repro.verify.litmus import all_litmus_tests

    for test in all_litmus_tests():
        if test.name == test_name:
            return test
    known = ", ".join(t.name for t in all_litmus_tests())
    raise ProgramError(f"unknown litmus test {test_name!r} (known: {known})")


def litmus_addresses(test, config: SystemConfig) -> Tuple[AddressSpace, Dict[str, int]]:
    """Allocate the test's variables exactly as the dynamic harness does."""
    space = AddressSpace(
        AddressMap(config.memory.words_per_line, config.num_directories)
    )
    addrs = {
        var: space.allocate(var, config.memory.words_per_line).start_word
        for var in test.variables
    }
    return space, addrs


def build_workload(
    spec: dict, config: SystemConfig
) -> Tuple[List[ThreadProgram], AddressSpace, Optional[object]]:
    """Instantiate a workload spec: ``(programs, address_space, litmus_test)``.

    The third element is the :class:`~repro.verify.litmus.LitmusTest`
    when the spec is a litmus workload (so callers can evaluate the
    forbidden-outcome predicate), else ``None``.
    """
    kind = spec.get("kind")
    dropped = set(spec.get("dropped_threads", ()))
    if kind == "litmus":
        test = _find_litmus(spec["test"])
        space, addrs = litmus_addresses(test, config)
        stagger = list(spec.get("stagger", ()))
        programs = []
        for i, ops in enumerate(test.build(addrs)):
            if i in dropped:
                programs.append(ThreadProgram([], name=f"t{i}-dropped"))
            elif stagger:
                programs.append(
                    ThreadProgram(
                        [Compute(stagger[i % len(stagger)])] + ops, name=f"t{i}"
                    )
                )
            else:
                programs.append(ThreadProgram(ops, name=f"t{i}"))
        return programs, space, test
    if kind == "app":
        from repro.harness.runner import ALL_APPS, build_app_workload

        if spec["app"] not in ALL_APPS:
            raise ProgramError(f"unknown application {spec['app']!r}")
        workload = build_app_workload(
            spec["app"], config, spec["instructions"], spec["seed"]
        )
        programs = list(workload.programs)
        for i in sorted(dropped):
            if 0 <= i < len(programs):
                programs[i] = ThreadProgram([], name=f"t{i}-dropped")
        return programs, workload.address_space, None
    raise ProgramError(f"unknown workload kind {kind!r} in spec {spec!r}")
