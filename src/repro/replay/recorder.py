"""The trace recorder: observe a run, emit a reconstructible trace.

The recorder uses the same wrapping pattern as
:class:`~repro.tools.chunk_trace.ChunkTracer` — callbacks are wrapped,
never replaced with different behaviour — so attaching it cannot change
a simulation's outcome (the tools tests assert this bit-for-bit).  It
hooks:

* the chunk lifecycle on every BulkSC driver (start/close/grant/commit/
  squash) via :func:`wrap_chunk_events`, shared with ``ChunkTracer``;
* the arbiter's ``decide`` (one record per request: grant/deny/need-R);
* the commit engine's serialization instant (the chunk's position in
  the SC total order), enriched with the grant epoch, the chunk's op
  list, and its true line footprints — the interface events the
  contract layer (:mod:`repro.contracts`) replays;
* each directory BDM's signature expansion (``dir.expand``);
* invalidation delivery to each victim processor, enriched with the
  independently recomputed signature-conflict and true-conflict sets
  (ground truth for the BDM disambiguation contract);
* every injected fault, via the injector's observer hook.

:func:`record_run` is the one-call entry point: build the machine from
pure data (a workload spec + config name + fault metadata), run it with
a recorder attached, and return the finished
:class:`~repro.replay.schema.Trace` — the exact inverse of
:func:`repro.replay.replayer.replay_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.faults.injector import (
    FaultInjector,
    FaultRecord,
    ScriptedFault,
    ScriptedFaultInjector,
)
from repro.faults.plan import CrashPoint, FaultPlan, crash_script_from
from repro.params import NAMED_CONFIGS
from repro.replay.schema import MAX_RECORDS, Trace, TraceRecord, make_header
from repro.replay.workload import build_workload, workload_name
from repro.verify.sc_checker import check_sequential_consistency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import Machine, RunResult

#: Event budget for recorded runs — matches the chaos harness: small
#: enough to abort genuine livelocks, generous for retry storms.
DEFAULT_MAX_EVENTS = 2_000_000


def wrap_chunk_events(
    machine: "Machine",
    callback: Callable[[int, object, str, str], None],
) -> None:
    """Instrument every BulkSC driver's chunk lifecycle.

    ``callback(proc, chunk, event, detail)`` fires on start/close/grant/
    commit/squash.  Wrapping is behaviour-preserving: originals run
    unchanged.  Shared by :class:`TraceRecorder` and
    :class:`~repro.tools.chunk_trace.ChunkTracer`.
    """
    from repro.core.driver import BulkSCDriver

    for driver in machine.drivers:
        if isinstance(driver, BulkSCDriver):
            _wrap_one_driver(driver, callback)


def _wrap_one_driver(driver, callback) -> None:
    original_ensure = driver._ensure_chunk

    def traced_ensure():
        had = driver._current is not None
        ok = original_ensure()
        if ok and not had and driver._current is not None:
            callback(driver.proc, driver._current, "start", "")
        return ok

    driver._ensure_chunk = traced_ensure

    original_close = driver._close_current

    def traced_close(reason):
        chunk = driver._current
        original_close(reason)
        if chunk is not None and not chunk.is_empty:
            callback(driver.proc, chunk, "close", reason)

    driver._close_current = traced_close

    original_granted = driver._on_chunk_granted

    def traced_granted(chunk):
        callback(driver.proc, chunk, "grant", "")
        original_granted(chunk)

    driver._on_chunk_granted = traced_granted

    original_committed = driver._on_chunk_committed

    def traced_committed(chunk):
        callback(driver.proc, chunk, "commit", f"{chunk.instructions} instr")
        original_committed(chunk)

    driver._on_chunk_committed = traced_committed

    original_squash = driver._squash_from

    def traced_squash(oldest, now):
        for chunk in driver.bdm.active_chunks():
            if chunk.is_active and chunk.chunk_id >= oldest.chunk_id:
                callback(
                    driver.proc, chunk, "squash", f"{chunk.instructions} instr lost"
                )
        original_squash(oldest, now)

    driver._squash_from = traced_squash


class TraceRecorder:
    """Records a machine's scheduling/protocol event stream as a trace."""

    def __init__(self, machine: "Machine", header: dict):
        self.machine = machine
        self.header = header
        self.records: List[TraceRecord] = []
        self._seq = 0
        self._elided = 0

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, machine: "Machine", header: dict) -> "TraceRecorder":
        """Instrument a (not yet run) machine."""
        recorder = cls(machine, header)
        wrap_chunk_events(machine, recorder._on_chunk_event)
        if machine.arbiter is not None:
            recorder._wrap_arbiter(machine.arbiter)
        if machine.commit_engine is not None:
            recorder._wrap_commit_engine(machine.commit_engine)
        recorder._wrap_invalidation_delivery()
        recorder._wrap_directory_expansion()
        machine.fault_injector.add_observer(recorder._on_fault)
        if getattr(machine, "recovery", None) is not None:
            machine.recovery.observers.append(recorder._on_recovery)
        return recorder

    def _wrap_arbiter(self, arbiter) -> None:
        recorder = self
        original_decide = arbiter.decide

        def traced_decide(proc, *args, **kwargs):
            decision = original_decide(proc, *args, **kwargs)
            if decision.needs_r_signature:
                ev = "arb.need_r"
            elif decision.granted:
                ev = "arb.grant"
            else:
                ev = "arb.deny"
            recorder._record(ev, proc, {"reason": decision.reason})
            return decision

        arbiter.decide = traced_decide

    def _wrap_commit_engine(self, engine) -> None:
        recorder = self
        original_serialize = engine._serialize

        def traced_serialize(txn):
            chunk = txn.chunk
            recorder._record(
                "commit.serialize",
                chunk.proc,
                {
                    "chunk": chunk.chunk_id,
                    "commit": txn.commit_id,
                    # The lease the grant was issued under (set just
                    # before serialization) — the epoch the arbiter and
                    # recovery contracts audit.
                    "epoch": list(txn.lease) if txn.lease else None,
                    # The chunk's op log, in program order: the exact
                    # data the commit engine publishes into the history
                    # at this instant, so the composition checker can
                    # replay the SC order from interface events alone.
                    "ops": [
                        [1 if is_store else 0, word_addr, value, program_index]
                        for is_store, word_addr, value, program_index in chunk.ops
                    ],
                    "w_lines": sorted(chunk.true_written_lines),
                    "r_lines": sorted(chunk.true_read_lines),
                },
            )
            original_serialize(txn)

        engine._serialize = traced_serialize

    def _commit_id_for(self, chunk) -> Optional[int]:
        engine = self.machine.commit_engine
        if engine is None:
            return None
        for txn in engine.inflight_transactions():
            if txn.chunk is chunk:
                return txn.commit_id
        return None

    def _lease_for(self, chunk) -> Optional[list]:
        engine = self.machine.commit_engine
        if engine is None:
            return None
        for txn in engine.inflight_transactions():
            if txn.chunk is chunk and txn.lease:
                return list(txn.lease)
        return None

    def _wrap_invalidation_delivery(self) -> None:
        recorder = self
        machine = self.machine
        original_deliver = machine.deliver_commit_to_proc

        def traced_deliver(proc, chunk, now):
            # Recompute both conflict sets *independently* of the BDM the
            # delivery is about to run: the signature predicate straight
            # from the victim's active chunks, and the ground-truth line
            # intersection.  A BDM that under-reports (or a filter that
            # hides a true conflict) is then visible in the trace itself.
            from repro.signatures.ops import collides_fast

            sig_conflicts = []
            true_conflicts = []
            for local in machine.bdms[proc].active_chunks():
                if not local.is_active:
                    continue
                if collides_fast(chunk.w_sig, local.r_sig, local.w_sig):
                    sig_conflicts.append(local.chunk_id)
                touched = local.true_read_lines | local.true_written_lines
                if touched & chunk.true_written_lines:
                    true_conflicts.append(local.chunk_id)
            recorder._record(
                "inv.deliver",
                proc,
                {
                    "chunk": chunk.chunk_id,
                    "committer": chunk.proc,
                    "commit": recorder._commit_id_for(chunk),
                    "w_lines": sorted(chunk.true_written_lines),
                    "sig_conflicts": sorted(sig_conflicts),
                    "true_conflicts": sorted(true_conflicts),
                },
            )
            original_deliver(proc, chunk, now)

        machine.deliver_commit_to_proc = traced_deliver

    def _wrap_directory_expansion(self) -> None:
        for index, dirbdm in enumerate(self.machine.dirbdms):
            self._wrap_one_dirbdm(index, dirbdm)

    def _wrap_one_dirbdm(self, index: int, dirbdm) -> None:
        recorder = self
        original_expand = dirbdm.expand_commit

        def traced_expand(w_signature, committing_proc, true_written_lines):
            outcome = original_expand(
                w_signature, committing_proc, true_written_lines
            )
            recorder._record(
                "dir.expand",
                None,
                {
                    "dir": index,
                    "committer": committing_proc,
                    "lines": sorted(true_written_lines),
                    "invalidation_list": sorted(outcome.invalidation_list),
                    "lookups": outcome.lookups,
                },
            )
            return outcome

        dirbdm.expand_commit = traced_expand

    # ------------------------------------------------------------------
    def _on_chunk_event(self, proc: int, chunk, event: str, detail: str) -> None:
        data: Dict[str, object] = {"chunk": chunk.chunk_id}
        if detail:
            data["detail"] = detail
        if event == "grant":
            # The lease is renewed across arbiter crashes before the
            # grant is (re-)accepted, so an accepted grant always shows
            # the live epoch — the recovery contract's dead-epoch clause
            # audits exactly this field.
            lease = self._lease_for(chunk)
            if lease is not None:
                data["epoch"] = lease
        self._record(f"chunk.{event}", proc, data)

    def _on_fault(self, record: FaultRecord) -> None:
        self._record(
            "fault",
            None,
            {
                "fault": record.fault,
                "kind": record.kind,
                "channel": record.channel,
                "seq": record.seq,
                "point": record.point,
                "label": record.label,
                "detail": record.detail,
                "extra": record.extra,
                "victims": list(record.victims),
            },
        )

    def _on_recovery(self, event) -> None:
        data: Dict[str, object] = {"target": event.target, "epoch": event.epoch}
        data.update(event.data)
        self._record(event.kind, None, data)

    def _record(self, ev: str, p: Optional[int], data: Dict[str, object]) -> None:
        if len(self.records) >= MAX_RECORDS:
            self._elided += 1
            return
        self._seq += 1
        self.records.append(
            TraceRecord(seq=self._seq, t=self.machine.sim.now, ev=ev, p=p, data=data)
        )

    # ------------------------------------------------------------------
    def finish(
        self,
        result: Optional["RunResult"] = None,
        error: Optional[str] = None,
        forbidden: Optional[bool] = None,
    ) -> Trace:
        """Build the footer from the machine's end state and close the trace."""
        machine = self.machine
        sc_ok: Optional[bool] = None
        sc_reason = ""
        if error is None and machine.history.enabled:
            check = check_sequential_consistency(machine.history)
            sc_ok = check.ok
            sc_reason = check.reason
        footer = {
            "footer": True,
            "records": len(self.records),
            "records_elided": self._elided,
            "cycles": result.cycles if result is not None else machine.sim.now,
            "final_memory": {
                str(addr): value
                for addr, value in sorted(machine.memory.nonzero_words().items())
            },
            "registers": {
                str(t.proc): dict(t.registers) for t in machine.threads
            },
            "io_log": [list(entry) for entry in machine.io_log],
            "sc_ok": sc_ok,
            "sc_reason": sc_reason,
            "forbidden": forbidden,
            "error": error,
            "rng_draws": machine.sim.rng.draws,
            "injector_draws": machine.fault_injector.rng.draws,
            "total_faults": machine.fault_injector.total_injected,
            "stats": machine.stats.snapshot(),
        }
        return Trace(header=self.header, records=self.records, footer=footer)


# ----------------------------------------------------------------------
# One-call record entry point
# ----------------------------------------------------------------------

@dataclass
class RecordedRun:
    """A finished recorded run: the trace plus convenience outcome flags."""

    trace: Trace
    result: Optional["RunResult"]
    error: Optional[str]

    @property
    def sc_ok(self) -> Optional[bool]:
        return self.trace.footer.get("sc_ok")

    @property
    def forbidden(self) -> Optional[bool]:
        return self.trace.footer.get("forbidden")

    @property
    def failed(self) -> bool:
        return (
            self.error is not None
            or self.sc_ok is False
            or bool(self.forbidden)
        )


def _parse_crash_script(entries: dict) -> dict:
    """``{"point:occ": target}`` (JSON spelling) → injector crash script."""
    script = {}
    for key, target in entries.items():
        point, occ = key.rsplit(":", 1)
        script[(point, int(occ))] = target
    return script


def build_injector(
    faults: Optional[dict], fault_script: Optional[dict], default_label: str
) -> FaultInjector:
    """Build the injector described by trace-header fault metadata."""
    if fault_script is not None:
        deliver = {
            int(seq): ScriptedFault(
                kind=entry["kind"], extra=float(entry.get("extra", 0.0))
            )
            for seq, entry in fault_script.get("deliver", {}).items()
        }
        storm = {
            int(seq): tuple(victims)
            for seq, victims in fault_script.get("storm", {}).items()
        }
        squash = {
            int(seq): tuple(victims)
            for seq, victims in fault_script.get("squash", {}).items()
        }
        return ScriptedFaultInjector(
            deliver_script=deliver,
            storm_script=storm,
            squash_script=squash,
            label=default_label,
            crash_script=_parse_crash_script(fault_script.get("crash", {})),
        )
    if faults and faults.get("spelling"):
        plan = FaultPlan.parse(faults["spelling"], rate=faults.get("rate"))
        return FaultInjector(
            plan,
            seed=int(faults.get("injector_seed", 0)),
            label=faults.get("injector_label") or default_label,
        )
    return FaultInjector()


def record_run(
    spec: dict,
    config_name: str = "BSCdypvt",
    seed: int = 0,
    faults: Optional[str] = None,
    rate: Optional[float] = None,
    no_retry: bool = False,
    injector_seed: Optional[int] = None,
    injector_label: Optional[str] = None,
    fault_script: Optional[dict] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    kind: str = "run",
    crashes: Optional[List[str]] = None,
) -> RecordedRun:
    """Run one workload with a recorder attached and return its trace.

    The argument set is deliberately pure data (strings, ints, dicts):
    the same values are stored in the trace header, which is what makes
    the run reconstructible by :func:`~repro.replay.replayer.replay_trace`.
    ``crashes`` lists scripted arbiter crashes as
    ``POINT:OCCURRENCE[:TARGET]`` spellings (see
    :class:`~repro.faults.plan.CrashPoint`).
    """
    from repro.system import Machine

    if config_name not in NAMED_CONFIGS:
        raise ReproError(f"unknown configuration {config_name!r}")
    config = NAMED_CONFIGS[config_name](seed=seed)
    if no_retry:
        config = config.with_resilience(retries_enabled=False)
    programs, space, test = build_workload(spec, config)
    label = injector_label or f"replay/{workload_name(spec)}"
    faults_meta = None
    if faults:
        faults_meta = {
            "spelling": faults,
            "rate": rate,
            "no_retry": no_retry,
            "injector_seed": injector_seed if injector_seed is not None else seed,
            "injector_label": label,
        }
    elif no_retry:
        faults_meta = {
            "spelling": None,
            "rate": None,
            "no_retry": True,
            "injector_seed": seed,
            "injector_label": label,
        }
    injector = build_injector(faults_meta, fault_script, label)
    crash_points = [CrashPoint.parse(spec_) for spec_ in (crashes or [])]
    if crash_points:
        injector.crash_script = crash_script_from(crash_points)
    header = make_header(
        kind=kind,
        config=config_name,
        seed=seed,
        workload=spec,
        faults=faults_meta,
        fault_script=fault_script,
        max_events=max_events,
        crashes=[cp.canonical() for cp in crash_points],
    )
    machine = Machine(
        config, programs, space, record_history=True, fault_injector=injector
    )
    recorder = TraceRecorder.attach(machine, header)
    result = None
    error = None
    try:
        result = machine.run(max_events=max_events)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    forbidden = None
    if test is not None and result is not None and not spec.get("dropped_threads"):
        # A workload with dropped threads is no longer the litmus test;
        # its forbidden-outcome predicate reads registers that were
        # never written.
        forbidden = bool(test.forbidden(result.registers))
    trace = recorder.finish(result=result, error=error, forbidden=forbidden)
    return RecordedRun(trace=trace, result=result, error=error)


def chaos_failure_run(report) -> Optional[object]:
    """First failing run record of a chaos report, or ``None``."""
    for run in getattr(report, "runs", ()):
        failing = (
            run.error is not None
            or not run.sc_certified
            or run.forbidden_outcome
        )
        if failing and getattr(run, "repro", None):
            return run
    return None


def record_chaos_failure(report) -> Optional[RecordedRun]:
    """Re-record a chaos campaign's first failing run as a trace.

    Chaos runs are deterministic per ``(plan, seed, label)``, so re-driving
    the failing run with a recorder attached reproduces it exactly; the
    resulting artifact replays (and minimizes) stand-alone.  Returns
    ``None`` when every run was certified.
    """
    run = chaos_failure_run(report)
    if run is None:
        return None
    return record_run(
        spec=run.repro["workload"],
        config_name=report.config_name,
        seed=run.repro["config_seed"],
        faults=report.faults_spelling,
        rate=report.rate,
        no_retry=not report.retries_enabled,
        injector_seed=report.seed,
        injector_label=run.repro["injector_label"],
        kind="chaos",
        crashes=list(getattr(report, "crashes_spelling", ()) or ()) or None,
    )


def save_chaos_failure(report, path: str) -> Optional[str]:
    """Save a chaos campaign's failing run as a replayable trace artifact.

    ``path`` ending in ``.jsonl`` writes a stand-alone trace file (the
    original contract).  Any other path is treated as a campaign store
    directory (:meth:`repro.campaign.store.CampaignStore.attach`): the
    trace lands under ``<path>/traces/`` next to campaign artifacts and
    is logged in the store's ``log.jsonl`` — one results directory
    instead of scattered trace files.  Returns the written path, or
    ``None`` when every run was certified.
    """
    from repro.replay.schema import write_trace

    recorded = record_chaos_failure(report)
    if recorded is None:
        return None
    if path.endswith(".jsonl"):
        write_trace(recorded.trace, path)
        return path
    from repro.campaign.store import CampaignStore

    store = CampaignStore.attach(path)
    run = chaos_failure_run(report)
    label = run.repro["injector_label"].replace("/", "-")
    return store.save_trace(recorded.trace, f"chaos-s{report.seed}-{label}")
