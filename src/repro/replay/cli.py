"""The ``replay`` CLI subcommand: record, run, explore, minimize.

Follows the ``analyze``/``chaos`` conventions — JSON or human reports,
deterministic output, distinct exit codes:

* ``replay record`` — run workloads with the recorder attached and save
  versioned JSONL traces;
* ``replay run`` — re-drive one or more traces and assert
  divergence-free execution (``--check`` surfaces the SC verdict);
* ``replay explore`` — schedule sweeps cross-validated against the
  static SC enumeration;
* ``replay minimize`` — delta-debug a failing trace to a minimal,
  rerunnable repro.

Exit codes: 0 clean, 1 findings (failing run recorded, divergence, new
state, unreproducible failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.errors import ProgramError, ReproError
from repro.replay.explorer import explore, explore_payload
from repro.replay.minimizer import MinimizeError, minimize_trace
from repro.replay.recorder import record_run
from repro.replay.replayer import replay_trace
from repro.replay.schema import (
    TraceValidationError,
    read_trace,
    write_trace,
)
from repro.replay.workload import app_spec, litmus_spec, workload_name

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _parse_stagger(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise ProgramError(f"bad --stagger {text!r}; expected e.g. '1,60'")
    if not values:
        raise ProgramError("--stagger needs at least one integer")
    return values


def _record_targets(args: argparse.Namespace) -> List[dict]:
    if args.app is not None:
        return [app_spec(args.app, args.instructions, args.seed)]
    from repro.verify.litmus import all_litmus_tests

    stagger = _parse_stagger(args.stagger)
    tests = all_litmus_tests()
    if args.litmus not in (None, "all"):
        tests = [t for t in tests if t.name == args.litmus]
        if not tests:
            known = ", ".join(t.name for t in all_litmus_tests())
            raise ProgramError(
                f"unknown litmus test {args.litmus!r} (known: {known})"
            )
    return [litmus_spec(t.name, stagger) for t in tests]


def _trace_path(out: str, spec: dict, multiple: bool) -> str:
    if not multiple and out.endswith(".jsonl"):
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return out
    os.makedirs(out, exist_ok=True)
    name = workload_name(spec).replace(":", "-").replace("/", "_")
    return os.path.join(out, f"{name}.jsonl")


def _cmd_record(args: argparse.Namespace) -> int:
    specs = _record_targets(args)
    payloads = []
    failures = 0
    for spec in specs:
        run = record_run(
            spec=spec,
            config_name=args.config,
            seed=args.seed,
            faults=args.faults,
            rate=args.rate,
            no_retry=args.no_retry,
            crashes=args.crash or None,
        )
        path = _trace_path(args.out, spec, multiple=len(specs) > 1)
        write_trace(run.trace, path)
        failures += run.failed
        payloads.append(
            {
                "workload": workload_name(spec),
                "trace": path,
                "records": len(run.trace.records),
                "cycles": run.trace.footer.get("cycles"),
                "faults_injected": run.trace.footer.get("total_faults"),
                "sc_ok": run.sc_ok,
                "forbidden": run.forbidden,
                "error": run.error,
            }
        )
    if args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    else:
        for p in payloads:
            status = "FAIL" if (
                p["error"] or p["sc_ok"] is False or p["forbidden"]
            ) else "ok"
            print(
                f"{status:4s} {p['workload']:24s} -> {p['trace']} "
                f"({p['records']} records, {p['faults_injected']} faults)"
            )
            if p["error"]:
                print(f"     {p['error']}")
    return EXIT_FINDINGS if failures else EXIT_CLEAN


def _cmd_run(args: argparse.Namespace) -> int:
    payloads = []
    findings = 0
    for path in args.traces:
        trace = read_trace(path)
        result = replay_trace(trace)
        diverged = not result.ok
        sc_bad = args.check and result.sc_ok is False
        findings += diverged or sc_bad
        payloads.append(
            {
                "trace": path,
                "kind": trace.kind,
                "ok": result.ok,
                "records": len(trace.records),
                "sc_ok": result.sc_ok,
                "error_reproduced": trace.footer.get("error"),
                "divergence": (
                    result.divergence.describe() if result.divergence else None
                ),
                "footer_mismatches": result.footer_mismatches,
            }
        )
        if not args.json:
            print(f"{path}: {result.describe()}")
            if args.check:
                print(
                    f"  sc check on replayed history: "
                    f"{'ok' if result.sc_ok else result.sc_ok}"
                )
    if args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _cmd_explore(args: argparse.Namespace) -> int:
    seeds = tuple(range(args.seed, args.seed + max(1, args.seeds)))
    report = explore(
        litmus=args.litmus,
        config_name=args.config,
        seeds=seeds,
        max_denials=args.max_denials,
        quick=args.quick,
    )
    if args.json:
        print(json.dumps(explore_payload(report), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def _cmd_minimize(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    out = args.out or (
        args.trace[: -len(".jsonl")] + ".min.jsonl"
        if args.trace.endswith(".jsonl")
        else args.trace + ".min.jsonl"
    )
    try:
        result = minimize_trace(trace, budget=args.budget)
    except MinimizeError as exc:
        print(f"minimize: {exc}", file=sys.stderr)
        return EXIT_FINDINGS
    write_trace(result.trace, out)
    payload = {
        "trace": args.trace,
        "minimized": out,
        "original_faults": result.original_faults,
        "minimized_faults": result.minimized_faults,
        "dropped_threads": result.dropped_threads,
        "runs_tested": result.runs_tested,
        "strictly_smaller": result.strictly_smaller,
        "error": result.error,
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.describe())
        print(f"minimized repro written to {out}")
    return EXIT_CLEAN


def add_replay_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "replay",
        help="deterministic record/replay, schedule exploration, minimization",
    )
    actions = parser.add_subparsers(dest="replay_action", required=True)

    p_rec = actions.add_parser(
        "record", help="run workloads with the recorder and save traces"
    )
    p_rec.add_argument(
        "--litmus", default="all", help="litmus test name or `all` (default all)"
    )
    p_rec.add_argument("--app", default=None, help="record a bundled app instead")
    p_rec.add_argument("--config", default="BSCdypvt", help="configuration name")
    p_rec.add_argument("--seed", type=int, default=0, help="run seed")
    p_rec.add_argument(
        "--stagger", default="1,1",
        help="comma-separated per-thread compute preamble (default 1,1)",
    )
    p_rec.add_argument(
        "--faults", default=None,
        help="comma-separated fault list to inject while recording",
    )
    p_rec.add_argument(
        "--rate", type=float, default=None, help="fault rate override"
    )
    p_rec.add_argument(
        "--no-retry", action="store_true",
        help="disable bounded retries (first lost message fails the run)",
    )
    p_rec.add_argument(
        "--crash",
        action="append",
        default=None,
        metavar="POINT:OCC[:TARGET]",
        help="scripted arbiter crash while recording, e.g. grant:1:arbiter0 "
        "(repeatable; recorded into the trace header for replay)",
    )
    p_rec.add_argument(
        "--instructions", type=int, default=2000,
        help="instructions per thread for --app (default 2000)",
    )
    p_rec.add_argument(
        "-o", "--out", default="traces",
        help="output directory (or .jsonl file for a single workload)",
    )
    p_rec.add_argument("--json", action="store_true", help="emit JSON")
    p_rec.set_defaults(replay_func=_cmd_record)

    p_run = actions.add_parser(
        "run", help="replay traces and assert divergence-free execution"
    )
    p_run.add_argument("traces", nargs="+", help="trace files to replay")
    p_run.add_argument(
        "--check", action="store_true",
        help="also fail if the replayed history flunks the SC checker",
    )
    p_run.add_argument("--json", action="store_true", help="emit JSON")
    p_run.set_defaults(replay_func=_cmd_run)

    p_exp = actions.add_parser(
        "explore",
        help="schedule sweeps cross-validated against static SC enumeration",
    )
    p_exp.add_argument("--litmus", default="all")
    p_exp.add_argument("--config", default="BSCdypvt")
    p_exp.add_argument("--seed", type=int, default=0, help="first seed")
    p_exp.add_argument(
        "--seeds", type=int, default=2, help="number of seeds to sweep (default 2)"
    )
    p_exp.add_argument(
        "--max-denials", type=int, default=2,
        help="max forced arbiter denials per processor (default 2)",
    )
    p_exp.add_argument(
        "--quick", action="store_true", help="trimmed sweep for CI smoke runs"
    )
    p_exp.add_argument("--json", action="store_true", help="emit JSON")
    p_exp.set_defaults(replay_func=_cmd_explore)

    p_min = actions.add_parser(
        "minimize", help="delta-debug a failing trace to a minimal repro"
    )
    p_min.add_argument("trace", help="failing trace file")
    p_min.add_argument(
        "-o", "--out", default=None,
        help="output path (default: <trace>.min.jsonl)",
    )
    p_min.add_argument(
        "--budget", type=int, default=200,
        help="max candidate runs to test (default 200)",
    )
    p_min.add_argument("--json", action="store_true", help="emit JSON")
    p_min.set_defaults(replay_func=_cmd_minimize)

    parser.set_defaults(func=cmd_replay)


def cmd_replay(args: argparse.Namespace) -> int:
    try:
        return args.replay_func(args)
    except TraceValidationError as exc:
        print(f"replay: invalid trace: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (ProgramError, ReproError, OSError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return EXIT_USAGE
