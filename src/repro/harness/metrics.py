"""Metric extraction: RunResult -> the numbers the paper reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.system import RunResult


def speedup_over(baseline: RunResult, candidate: RunResult) -> float:
    """Execution-time speedup of ``candidate`` normalized to ``baseline``.

    1.0 means equal; the paper's Figures 9/10 normalize everything to RC.
    """
    if candidate.cycles <= 0:
        raise ValueError("candidate ran for zero cycles")
    return baseline.cycles / candidate.cycles


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def _proc_sum(result: RunResult, suffix: str) -> float:
    return sum(
        result.stat(f"proc{p}.{suffix}")
        for p in range(result.config.num_processors)
    )


def _proc_mean_of_means(result: RunResult, suffix: str) -> float:
    values = [
        result.stats.get(f"proc{p}.{suffix}.mean", 0.0)
        for p in range(result.config.num_processors)
    ]
    values = [v for v in values if v > 0] or [0.0]
    return sum(values) / len(values)


@dataclass(frozen=True)
class CharacterizationRow:
    """One application's row of the paper's Table 3."""

    app: str
    squashed_instructions_pct: float
    read_set: float
    write_set: float
    priv_write_set: float
    spec_write_displacements_per_100k: float
    spec_read_displacements_per_100k: float
    data_from_priv_buffer_per_1k: float
    extra_cache_invs_per_1k: float

    @classmethod
    def from_result(cls, app: str, result: RunResult) -> "CharacterizationRow":
        commits = max(1.0, result.stat("commit.visible"))
        squashed = _proc_sum(result, "squashed_instructions")
        total = max(1, result.total_instructions)
        return cls(
            app=app,
            squashed_instructions_pct=100.0 * squashed / total,
            read_set=_proc_mean_of_means(result, "read_set"),
            write_set=_proc_mean_of_means(result, "write_set"),
            priv_write_set=_proc_mean_of_means(result, "priv_write_set"),
            # Speculatively *written* lines are pinned and cannot be
            # displaced; the counter exists to prove it stays ~0.
            spec_write_displacements_per_100k=100_000.0
            * _proc_sum(result, "spec_write_displacements")
            / commits,
            spec_read_displacements_per_100k=100_000.0
            * _proc_sum(result, "spec_read_displacements")
            / commits,
            data_from_priv_buffer_per_1k=1_000.0
            * _proc_sum(result, "data_from_private_buffer")
            / commits,
            extra_cache_invs_per_1k=1_000.0
            * _proc_sum(result, "extra_cache_invalidations")
            / commits,
        )


@dataclass(frozen=True)
class CommitRow:
    """One application's row of the paper's Table 4."""

    app: str
    lookups_per_commit: float
    unnecessary_lookups_pct: float
    unnecessary_updates_pct: float
    nodes_per_w_sig: float
    pending_w_sigs: float
    nonempty_w_list_pct: float
    r_sig_required_pct: float
    empty_w_sig_pct: float

    @classmethod
    def from_result(cls, app: str, result: RunResult) -> "CommitRow":
        commits = max(1.0, result.stat("commit.visible"))
        lookups = result.stat("dirbdm.lookups")
        unnecessary = result.stat("dirbdm.unnecessary_lookups")
        updates = result.stat("dirbdm.updates")
        unnecessary_updates = result.stat("dirbdm.unnecessary_updates")
        # The occupancy is flattened into the snapshot at run end, so it
        # survives the pickle boundary of a parallel sweep (machine=None);
        # the live registry is only a fallback for hand-built results.
        pending = result.stat("arbiter0.pending_w.avg")
        nonempty = 100.0 * result.stat("arbiter0.pending_w.nonzero_frac")
        machine = result.machine
        if "arbiter0.pending_w.avg" not in result.stats and machine is not None:
            end = max(result.cycles, 1.0)
            tw = machine.stats.time_weighted("arbiter0.pending_w")
            pending = tw.average(end)
            nonempty = 100.0 * tw.fraction_nonzero(end)
        grants = max(1.0, result.stat("commit.grants"))
        return cls(
            app=app,
            lookups_per_commit=lookups / commits,
            unnecessary_lookups_pct=100.0 * unnecessary / max(1.0, lookups),
            unnecessary_updates_pct=100.0 * unnecessary_updates / max(1.0, updates),
            nodes_per_w_sig=result.stats.get("commit.nodes_per_w_sig.mean", 0.0),
            pending_w_sigs=pending,
            nonempty_w_list_pct=nonempty,
            r_sig_required_pct=100.0
            * result.stat("commit.r_signatures_sent")
            / grants,
            empty_w_sig_pct=100.0 * result.stat("commit.empty_w_commits") / grants,
        )


def traffic_breakdown_normalized(
    result: RunResult, rc_total_bytes: float
) -> Dict[str, float]:
    """Per-class traffic as a fraction of the RC run's total (Figure 11)."""
    if rc_total_bytes <= 0:
        raise ValueError("RC total bytes must be positive")
    return {
        cls: bytes_ / rc_total_bytes for cls, bytes_ in result.traffic_bytes.items()
    }


def total_traffic(result: RunResult) -> float:
    return float(sum(result.traffic_bytes.values()))


def squashed_instruction_pct(result: RunResult) -> float:
    return 100.0 * _proc_sum(result, "squashed_instructions") / max(
        1, result.total_instructions
    )
