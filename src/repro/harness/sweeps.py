"""Generic parameter sweeps over BulkSC configurations.

The ablation benchmarks and exploratory notebooks share one pattern:
vary a single knob, re-run a set of applications, and extract a metric.
:func:`sweep_parameter` packages it with memoized runners and structured
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.parallel import CellFailure, parallel_map
from repro.harness.runner import SweepRunner
from repro.params import SystemConfig
from repro.system import RunResult


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, application) observation."""

    parameter: object
    app: str
    metric: float
    cycles: float


@dataclass(frozen=True)
class SweepResult:
    """All observations of one parameter sweep."""

    parameter_name: str
    metric_name: str
    points: List[SweepPoint]

    def series_for(self, app: str) -> List[SweepPoint]:
        return [p for p in self.points if p.app == app]

    def values(self) -> List[object]:
        seen: List[object] = []
        for point in self.points:
            if point.parameter not in seen:
                seen.append(point.parameter)
        return seen

    def metric_table(self) -> Dict[object, Dict[str, float]]:
        """{parameter value: {app: metric}}."""
        table: Dict[object, Dict[str, float]] = {}
        for point in self.points:
            table.setdefault(point.parameter, {})[point.app] = point.metric
        return table

    def render(self) -> str:
        apps = sorted({p.app for p in self.points})
        header = [self.parameter_name] + apps
        lines = ["  ".join(h.rjust(10) for h in header)]
        table = self.metric_table()
        for value in self.values():
            cells = [str(value).rjust(10)]
            for app in apps:
                metric = table.get(value, {}).get(app)
                cells.append(
                    (f"{metric:.2f}" if metric is not None else "-").rjust(10)
                )
            lines.append("  ".join(cells))
        return "\n".join(lines)


def sweep_parameter(
    parameter_name: str,
    values: Sequence[object],
    apply: Callable[[SystemConfig, object], SystemConfig],
    metric: Callable[[RunResult], float],
    apps: Sequence[str],
    config_name: str = "BSCdypvt",
    instructions: int = 8000,
    seed: int = 0,
    metric_name: str = "metric",
    jobs: int = 1,
    cell_timeout: Optional[float] = None,
) -> SweepResult:
    """Run ``config_name`` over ``apps`` for each parameter value.

    Args:
        parameter_name: Label for reports.
        values: The knob settings to sweep.
        apply: ``(base_config, value) -> config`` transformation.
        metric: Extracts the observed number from a run.
        apps: Applications to run at every point.
        config_name: Which Table 2 configuration to start from.
        instructions: Per-thread dynamic instruction budget.
        seed: Workload seed (shared across points so programs match).
        metric_name: Label for the metric column.
        jobs: Worker processes for the (value, app) grid; cells are
            independent simulations, so results are identical to a
            serial sweep and merge in grid order.
        cell_timeout: Per-cell wall-clock budget in seconds; a cell
            that exceeds it (or whose worker dies) is dropped from the
            result's points rather than hanging or failing the sweep.
    """

    def run_cell(cell) -> SweepPoint:
        value, app = cell
        runner = SweepRunner(
            instructions,
            seed,
            config_overrides={config_name: lambda cfg: apply(cfg, value)},
        )
        result = runner.result(config_name, app)
        return SweepPoint(
            parameter=value,
            app=app,
            metric=metric(result),
            cycles=result.cycles,
        )

    cells = [(value, app) for value in values for app in apps]
    outcomes = parallel_map(
        run_cell,
        cells,
        jobs=jobs,
        timeout=cell_timeout,
        failure_mode="return",
    )
    points: List[SweepPoint] = [
        p for p in outcomes if not isinstance(p, CellFailure)
    ]
    return SweepResult(parameter_name, metric_name, points)
