"""The experiment registry: every paper artifact -> regenerating code.

Each function returns both the structured data and a rendered text
report; the benchmark suite calls them, and ``examples/reproduce_paper.py``
uses them to regenerate EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.harness.figures import (
    render_grouped_bars,
    render_stacked_traffic,
    series_geometric_means,
)
from repro.harness.metrics import (
    CharacterizationRow,
    CommitRow,
    speedup_over,
    squashed_instruction_pct,
    total_traffic,
    traffic_breakdown_normalized,
)
from repro.harness.runner import (
    ALL_APPS,
    FIGURE9_CONFIGS,
    SPLASH2_APPS,
    SweepRunner,
)
from repro.harness.tables import render_table3, render_table4
from repro.params import SystemConfig


# ---------------------------------------------------------------------------
# Figure 9: performance of all configurations, normalized to RC
# ---------------------------------------------------------------------------

def figure9(
    runner: SweepRunner, apps: Sequence[str] = ALL_APPS
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Speedup over RC for SC, RC, SC++, BSCbase, BSCdypvt, BSCexact, BSCstpvt.

    Expected shape (paper): BSCdypvt ≈ RC ≈ SC++; SC clearly slower;
    BSCbase a few percent below BSCdypvt; BSCexact ≈ BSCdypvt; radix is
    the aliasing outlier.
    """
    # Prefetch the whole grid in one sweep: with runner.jobs > 1 the
    # uncached cells fan out across workers; the per-cell reads below then
    # hit the cache, so the assembled artifact is order-independent.
    runner.sweep(list(FIGURE9_CONFIGS), list(apps))
    series: Dict[str, Dict[str, float]] = {name: {} for name in FIGURE9_CONFIGS}
    for app in apps:
        rc = runner.result("RC", app)
        for name in FIGURE9_CONFIGS:
            series[name][app] = speedup_over(rc, runner.result(name, app))
    report = render_grouped_bars(
        "Figure 9: speedup over RC", series, list(apps)
    )
    return series, report


# ---------------------------------------------------------------------------
# Figure 10: BSCdypvt with different chunk sizes
# ---------------------------------------------------------------------------

def figure10(
    instructions: int = 20_000,
    seed: int = 0,
    apps: Sequence[str] = ALL_APPS,
    chunk_sizes: Sequence[int] = (1000, 2000, 4000),
    jobs: int = 1,
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """BSCdypvt at chunk sizes 1000/2000/4000 plus 4000-exact.

    Expected shape: mild degradation as chunks grow, mostly recovered by
    the exact signature (the loss is aliasing, not real sharing).
    """
    def chunk_override(size: int) -> Callable[[SystemConfig], SystemConfig]:
        return lambda cfg: cfg.with_bulksc(chunk_size_instructions=size)

    series: Dict[str, Dict[str, float]] = {}
    base_runner = SweepRunner(instructions, seed, jobs=jobs)
    base_runner.sweep(["RC"], list(apps))
    for size in chunk_sizes:
        runner = SweepRunner(
            instructions,
            seed,
            config_overrides={"BSCdypvt": chunk_override(size)},
            jobs=jobs,
        )
        runner.sweep(["BSCdypvt"], list(apps))
        label = str(size)
        series[label] = {}
        for app in apps:
            rc = base_runner.result("RC", app)
            series[label][app] = speedup_over(rc, runner.result("BSCdypvt", app))
    exact_runner = SweepRunner(
        instructions,
        seed,
        config_overrides={"BSCexact": chunk_override(max(chunk_sizes))},
        jobs=jobs,
    )
    exact_runner.sweep(["BSCexact"], list(apps))
    label = f"{max(chunk_sizes)}-exact"
    series[label] = {}
    for app in apps:
        rc = base_runner.result("RC", app)
        series[label][app] = speedup_over(rc, exact_runner.result("BSCexact", app))
    report = render_grouped_bars(
        "Figure 10: BSCdypvt chunk-size sensitivity (speedup over RC)",
        series,
        list(apps),
    )
    return series, report


# ---------------------------------------------------------------------------
# Table 3: characterization of BulkSC
# ---------------------------------------------------------------------------

def table3(
    runner: SweepRunner, apps: Sequence[str] = ALL_APPS
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Table 3 rows for BSCdypvt, plus squashed% for BSCexact/BSCbase."""
    runner.sweep(["BSCexact", "BSCdypvt", "BSCbase"], list(apps))
    rows: List[CharacterizationRow] = []
    squash_columns: Dict[str, Dict[str, float]] = {
        "BSCexact": {},
        "BSCdypvt": {},
        "BSCbase": {},
    }
    for app in apps:
        dypvt = runner.result("BSCdypvt", app)
        rows.append(CharacterizationRow.from_result(app, dypvt))
        for name in squash_columns:
            squash_columns[name][app] = squashed_instruction_pct(
                runner.result(name, app)
            )
    report_lines = [render_table3(rows), "", "# Squashed instructions (%)"]
    header = ["app", "BSCexact", "BSCdypvt", "BSCbase"]
    report_lines.append("  ".join(h.rjust(9) for h in header))
    for app in apps:
        cells = [app.rjust(9)] + [
            f"{squash_columns[name][app]:.2f}".rjust(9)
            for name in ("BSCexact", "BSCdypvt", "BSCbase")
        ]
        report_lines.append("  ".join(cells))
    data = {
        "squash_exact": squash_columns["BSCexact"],
        "squash_dypvt": squash_columns["BSCdypvt"],
        "squash_base": squash_columns["BSCbase"],
        "read_set": {r.app: r.read_set for r in rows},
        "write_set": {r.app: r.write_set for r in rows},
        "priv_write_set": {r.app: r.priv_write_set for r in rows},
        "priv_buffer_per_1k": {r.app: r.data_from_priv_buffer_per_1k for r in rows},
        "extra_invs_per_1k": {r.app: r.extra_cache_invs_per_1k for r in rows},
        "spec_read_disp_per_100k": {
            r.app: r.spec_read_displacements_per_100k for r in rows
        },
        "spec_write_disp_per_100k": {
            r.app: r.spec_write_displacements_per_100k for r in rows
        },
    }
    return data, "\n".join(report_lines)


# ---------------------------------------------------------------------------
# Table 4: commit process and coherence operations
# ---------------------------------------------------------------------------

def table4(
    runner: SweepRunner, apps: Sequence[str] = ALL_APPS
) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Table 4 rows for BSCdypvt."""
    runner.sweep(["BSCdypvt"], list(apps))
    rows = [
        CommitRow.from_result(app, runner.result("BSCdypvt", app)) for app in apps
    ]
    data = {
        "lookups_per_commit": {r.app: r.lookups_per_commit for r in rows},
        "unnecessary_lookups_pct": {r.app: r.unnecessary_lookups_pct for r in rows},
        "unnecessary_updates_pct": {r.app: r.unnecessary_updates_pct for r in rows},
        "nodes_per_w_sig": {r.app: r.nodes_per_w_sig for r in rows},
        "pending_w_sigs": {r.app: r.pending_w_sigs for r in rows},
        "nonempty_w_list_pct": {r.app: r.nonempty_w_list_pct for r in rows},
        "r_sig_required_pct": {r.app: r.r_sig_required_pct for r in rows},
        "empty_w_sig_pct": {r.app: r.empty_w_sig_pct for r in rows},
    }
    return data, render_table4(rows)


# ---------------------------------------------------------------------------
# Figure 11: network traffic normalized to RC
# ---------------------------------------------------------------------------

def figure11(
    instructions: int = 20_000,
    seed: int = 0,
    apps: Sequence[str] = ALL_APPS,
    jobs: int = 1,
) -> Tuple[Dict[str, Dict[str, Dict[str, float]]], str]:
    """Traffic breakdown for R (RC), E (BSCexact), N (BSCdypvt without the
    RSig optimization), and B (BSCdypvt), normalized to RC's total bytes.

    Expected shape: B within ~5-15% of R on average, RdSig nearly absent
    from B (the RSig optimization), and N showing the RdSig traffic that
    optimization removes.
    """
    runner = SweepRunner(instructions, seed, jobs=jobs)
    no_rsig_runner = SweepRunner(
        instructions,
        seed,
        config_overrides={
            "BSCdypvt": lambda cfg: cfg.with_bulksc(rsig_optimization=False)
        },
        jobs=jobs,
    )
    runner.sweep(["RC", "BSCexact", "BSCdypvt"], list(apps))
    no_rsig_runner.sweep(["BSCdypvt"], list(apps))
    breakdowns: Dict[str, Dict[str, Dict[str, float]]] = {
        "R": {},
        "E": {},
        "N": {},
        "B": {},
    }
    for app in apps:
        rc = runner.result("RC", app)
        rc_total = total_traffic(rc)
        breakdowns["R"][app] = traffic_breakdown_normalized(rc, rc_total)
        breakdowns["E"][app] = traffic_breakdown_normalized(
            runner.result("BSCexact", app), rc_total
        )
        breakdowns["N"][app] = traffic_breakdown_normalized(
            no_rsig_runner.result("BSCdypvt", app), rc_total
        )
        breakdowns["B"][app] = traffic_breakdown_normalized(
            runner.result("BSCdypvt", app), rc_total
        )
    report = render_stacked_traffic(
        "Figure 11: traffic normalized to RC (R=RC, E=BSCexact, "
        "N=BSCdypvt w/o RSig, B=BSCdypvt)",
        breakdowns,
        list(apps),
    )
    return breakdowns, report


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Experiment:
    """One paper artifact and the code that regenerates it."""

    key: str
    paper_artifact: str
    description: str
    bench_target: str


EXPERIMENTS: Dict[str, Experiment] = {
    "figure9": Experiment(
        key="figure9",
        paper_artifact="Figure 9",
        description="Performance of SC, RC, SC++, and four BulkSC "
        "configurations, normalized to RC, over 11 SPLASH-2 apps and two "
        "commercial workloads.",
        bench_target="benchmarks/bench_fig9_performance.py",
    ),
    "figure10": Experiment(
        key="figure10",
        paper_artifact="Figure 10",
        description="BSCdypvt with 1000/2000/4000-instruction chunks plus "
        "a 4000-instruction exact-signature run.",
        bench_target="benchmarks/bench_fig10_chunk_size.py",
    ),
    "figure11": Experiment(
        key="figure11",
        paper_artifact="Figure 11",
        description="Interconnect traffic (Rd/Wr, RdSig, WrSig, Inv, "
        "Other) normalized to RC for RC, BSCexact, BSCdypvt without RSig, "
        "and BSCdypvt.",
        bench_target="benchmarks/bench_fig11_traffic.py",
    ),
    "table3": Experiment(
        key="table3",
        paper_artifact="Table 3",
        description="BulkSC characterization: squashed instructions, "
        "R/W/Wpriv set sizes, speculative displacements, Private Buffer "
        "supplies, extra cache invalidations.",
        bench_target="benchmarks/bench_table3_characterization.py",
    ),
    "table4": Experiment(
        key="table4",
        paper_artifact="Table 4",
        description="Commit/coherence operations: signature-expansion "
        "lookups, unnecessary lookups/updates, nodes per W signature, "
        "arbiter occupancy, RSig effectiveness, empty-W commits.",
        bench_target="benchmarks/bench_table4_commit.py",
    ),
    "ablations": Experiment(
        key="ablations",
        paper_artifact="Design-choice ablations (DESIGN.md)",
        description="Central vs distributed arbiter, RSig on/off, "
        "signature size sweep, Private Buffer capacity sweep.",
        bench_target="benchmarks/bench_ablations.py",
    ),
}
