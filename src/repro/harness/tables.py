"""Text rendering of the paper's tables."""

from __future__ import annotations

from typing import List, Sequence

from repro.harness.metrics import CharacterizationRow, CommitRow


def _render(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table3(rows: List[CharacterizationRow]) -> str:
    """Table 3: Characterization of BulkSC (BSCdypvt)."""
    headers = (
        "Appl.",
        "Squashed%",
        "ReadSet",
        "WriteSet",
        "PrivWrite",
        "WrDisp/100k",
        "RdDisp/100k",
        "PrivBuf/1k",
        "ExtraInv/1k",
    )
    body = [
        (
            row.app,
            f"{row.squashed_instructions_pct:.2f}",
            f"{row.read_set:.1f}",
            f"{row.write_set:.2f}",
            f"{row.priv_write_set:.1f}",
            f"{row.spec_write_displacements_per_100k:.1f}",
            f"{row.spec_read_displacements_per_100k:.1f}",
            f"{row.data_from_priv_buffer_per_1k:.1f}",
            f"{row.extra_cache_invs_per_1k:.1f}",
        )
        for row in rows
    ]
    return _render(headers, body)


def render_table4(rows: List[CommitRow]) -> str:
    """Table 4: Commit process and coherence operations (BSCdypvt)."""
    headers = (
        "Appl.",
        "Lookups/Commit",
        "UnnecLookups%",
        "UnnecUpdates%",
        "Nodes/WSig",
        "PendWSigs",
        "NonEmptyWList%",
        "RSigReq%",
        "EmptyWSig%",
    )
    body = [
        (
            row.app,
            f"{row.lookups_per_commit:.1f}",
            f"{row.unnecessary_lookups_pct:.1f}",
            f"{row.unnecessary_updates_pct:.2f}",
            f"{row.nodes_per_w_sig:.2f}",
            f"{row.pending_w_sigs:.2f}",
            f"{row.nonempty_w_list_pct:.1f}",
            f"{row.r_sig_required_pct:.1f}",
            f"{row.empty_w_sig_pct:.1f}",
        )
        for row in rows
    ]
    return _render(headers, body)


def render_generic(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    """Render any table with str() cells (used by ablation benches)."""
    return _render(list(headers), [[str(c) for c in row] for row in rows])
