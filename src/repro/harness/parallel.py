"""Deterministic fan-out of independent simulation cells across processes.

Sweeps, chaos campaigns, and benchmarks all reduce to the same shape:
run many *independent* (config, app, seed) cells and merge the results.
:func:`parallel_map` fans the cells over forked worker processes and
returns results **in submission order**, so a parallel sweep merges into
exactly the artifact a serial sweep produces — every cell is a full
simulation with its own seed, and cells never share mutable state.

Two constraints shape the implementation:

* Cell functions are usually closures (over a runner, a config override,
  a campaign plan) and closures cannot cross a pickle boundary.  Each
  cell therefore runs in a child forked directly from the caller —
  the closure and its item are inherited by memory snapshot, and only
  the (picklable) result crosses the pipe back.
* Where ``fork`` is unavailable (non-POSIX platforms) or parallelism is
  not requested, the same call degrades to a plain serial loop, keeping
  ``--jobs 1`` and ``--jobs N`` bit-identical by construction.

Supervision (new in the campaign runner work): because every cell is its
own OS process, the parent can detect a worker that *dies* mid-cell
(OOM-killed, segfault, ``kill -9``) and retry the cell with exponential
backoff, and it can enforce a per-cell wall-clock ``timeout`` by killing
a livelocked child.  Infra failures surface as the typed
:class:`~repro.errors.WorkerCrashError` /
:class:`~repro.errors.CellTimeoutError`, or — with
``failure_mode="return"`` — as in-slot :class:`CellFailure` sentinels so
one bad cell cannot sink a million-run campaign.

Results must be picklable: simulation cells should return slim payloads
(e.g. a :class:`~repro.system.RunResult` with ``machine=None``) rather
than live machines, whose event heaps hold lambdas.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.errors import CellTimeoutError, WorkerCrashError

T = TypeVar("T")
R = TypeVar("R")

#: Sleep before retry attempt ``n`` is ``backoff * 2**n`` seconds.
DEFAULT_BACKOFF = 0.05

# True inside a forked cell worker: nested parallel_map calls (a cell
# that itself sweeps) run serially instead of forking grandchildren.
_IN_WORKER = False


def fork_available() -> bool:
    """Whether the fork start method (required for closures) exists."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (= auto)."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class CellFailure:
    """In-slot sentinel for an infra-failed cell (``failure_mode="return"``).

    Distinguishes the two non-deterministic ways a cell can fail to
    produce a result — the worker process died (``kind="crash"``) or the
    cell exceeded its wall-clock budget and was killed
    (``kind="timeout"``) — from a deterministic exception raised *by*
    the cell function, which always propagates.
    """

    index: int
    kind: str  # "crash" | "timeout"
    error: str
    attempts: int
    elapsed: float

    def to_error(self) -> Exception:
        if self.kind == "timeout":
            return CellTimeoutError(self.error)
        return WorkerCrashError(self.error)


class _CellWorker:
    """One forked child computing ``fn(item)`` for a single cell."""

    def __init__(self, context, fn: Callable, item, index: int):
        self.index = index
        self.started = time.monotonic()  # detlint: ok[DET003] — per-cell timeout clock
        self.recv, child_send = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_cell_main, args=(child_send, fn, item), daemon=True
        )
        self.process.start()
        # The parent keeps only the read end; the child holds the write
        # end.  Closing our copy of the write end makes EOF detectable.
        child_send.close()

    def elapsed(self) -> float:
        return time.monotonic() - self.started  # detlint: ok[DET003] — per-cell timeout clock

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
        self.process.join()
        self.recv.close()

    def finish(self):
        """Read the child's outcome after its pipe became readable.

        Returns ``(ok, payload)`` where ``ok`` is True for a result and
        False for a crash (payload is a description string).  A cell
        function's own exception is re-raised here, in the parent.
        """
        try:
            ok, payload = self.recv.recv()
        except (EOFError, OSError):
            self.process.join()
            return False, f"worker exited with code {self.process.exitcode}"
        self.process.join()
        self.recv.close()
        if ok:
            return True, payload
        raise payload  # the cell function raised: deterministic, propagate


def _cell_main(send, fn, item) -> None:
    """Child entry: run the cell, ship the outcome, exit."""
    global _IN_WORKER
    _IN_WORKER = True
    try:
        result = fn(item)
        out = (True, result)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            out = (False, exc)
        except Exception:  # pragma: no cover - defensive
            out = (False, RuntimeError(repr(exc)))
    try:
        send.send(out)
    except Exception:
        # An unpicklable result/exception: report it as such rather
        # than dying silently (which would read as a worker crash).
        send.send((False, RuntimeError(f"unpicklable cell outcome: {out[1]!r}")))
    send.close()


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    chunksize: int = 1,  # noqa: ARG001 - kept for API compatibility
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = DEFAULT_BACKOFF,
    failure_mode: str = "raise",
) -> List[Union[R, CellFailure]]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Returns results in item order regardless of completion order, so the
    caller's merge is deterministic.  Falls back to a serial in-process
    loop when ``jobs <= 1`` (and no ``timeout`` is set), there are no
    items, or fork is missing.

    Args:
        fn: The cell function; exceptions it raises always propagate
            (they are deterministic bugs, not infra failures).
        items: The cells.
        jobs: Concurrent worker processes; ``0`` = one per CPU.
        chunksize: Ignored (kept for backwards compatibility).
        timeout: Per-cell wall-clock budget in seconds; a cell that
            exceeds it is killed.  Enforced only where fork exists —
            with ``jobs <= 1`` the cells still run one at a time, each
            in its own supervised child.
        retries: How many times to re-fork a cell whose worker *died*
            (timeouts are not retried: cells are deterministic, so a
            livelocked cell would just burn another budget).
        backoff: Base of the exponential retry backoff (seconds).  Each
            retry sleeps ``backoff * 2**n`` scaled by a deterministic
            per-(cell, attempt) jitter in ``[1.0, 1.5)`` so simultaneous
            crashes do not re-fork in lockstep.
        failure_mode: ``"raise"`` propagates
            :class:`~repro.errors.WorkerCrashError` /
            :class:`~repro.errors.CellTimeoutError`; ``"return"`` puts a
            :class:`CellFailure` in the failed cell's slot instead.
    """
    if failure_mode not in ("raise", "return"):
        raise ValueError(f"unknown failure_mode {failure_mode!r}")
    work = list(items)
    if jobs == 0:
        jobs = default_jobs()
    supervised = fork_available() and not _IN_WORKER and (
        jobs > 1 or timeout is not None or retries > 0
    )
    if not work or not supervised:
        return [fn(item) for item in work]
    return _supervised_map(
        fn, work, max(1, jobs), timeout, retries, backoff, failure_mode
    )


def _supervised_map(
    fn: Callable,
    work: List,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    failure_mode: str,
) -> List:
    context = multiprocessing.get_context("fork")
    results: List = [None] * len(work)
    attempts = [0] * len(work)
    pending = list(range(len(work)))  # not yet forked (FIFO)
    retry_at: List = []  # (monotonic time, index) waiting out a backoff
    running: dict = {}  # recv-connection -> _CellWorker
    failures: List[CellFailure] = []

    def settle(index: int, failure: CellFailure) -> None:
        if failure_mode == "return":
            results[index] = failure
        else:
            failures.append(failure)

    try:
        while pending or retry_at or running:
            now = time.monotonic()  # detlint: ok[DET003] — retry/timeout scheduling clock
            while retry_at and retry_at[0][0] <= now:
                pending.insert(0, retry_at.pop(0)[1])
            while pending and len(running) < jobs:
                index = pending.pop(0)
                attempts[index] += 1
                worker = _CellWorker(context, fn, work[index], index)
                running[worker.recv] = worker
            if not running:
                if retry_at:
                    time.sleep(max(0.0, retry_at[0][0] - time.monotonic()))  # detlint: ok[DET003] — retry backoff clock
                continue
            wait_for = 0.2
            if timeout is not None:
                soonest = min(w.started for w in running.values())
                wait_for = max(0.0, soonest + timeout - time.monotonic())  # detlint: ok[DET003] — per-cell timeout clock
                wait_for = min(wait_for, 0.2)
            ready = multiprocessing.connection.wait(
                list(running.keys()), timeout=wait_for
            )
            for conn in ready:
                worker = running.pop(conn)
                ok, payload = worker.finish()
                if ok:
                    results[worker.index] = payload
                    continue
                if attempts[worker.index] <= retries:
                    # Jittered exponential backoff: when one bad shard
                    # kills several workers at once, a naked 2**n would
                    # re-fork them in lockstep and they would contend
                    # (or OOM) together again.  The jitter draw is
                    # seeded per (cell, attempt), so the schedule is
                    # reproducible; cell *outcomes* never depend on it.
                    jitter_rng = random.Random(
                        (worker.index + 1) * 1_000_003 + attempts[worker.index]
                    )
                    delay = backoff * 2 ** (attempts[worker.index] - 1)
                    delay *= 1.0 + 0.5 * jitter_rng.random()
                    retry_at.append(
                        (
                            time.monotonic()  # detlint: ok[DET003] — retry backoff clock
                            + delay,
                            worker.index,
                        )
                    )
                    retry_at.sort()
                else:
                    settle(
                        worker.index,
                        CellFailure(
                            index=worker.index,
                            kind="crash",
                            error=(
                                f"cell {worker.index} worker died "
                                f"({payload}) after "
                                f"{attempts[worker.index]} attempt(s)"
                            ),
                            attempts=attempts[worker.index],
                            elapsed=worker.elapsed(),
                        ),
                    )
            if timeout is not None:
                for conn in [
                    c for c, w in running.items() if w.elapsed() > timeout
                ]:
                    worker = running.pop(conn)
                    elapsed = worker.elapsed()
                    worker.kill()
                    settle(
                        worker.index,
                        CellFailure(
                            index=worker.index,
                            kind="timeout",
                            error=(
                                f"cell {worker.index} exceeded its "
                                f"{timeout:g}s wall-clock budget "
                                f"(killed after {elapsed:.1f}s)"
                            ),
                            attempts=attempts[worker.index],
                            elapsed=elapsed,
                        ),
                    )
    finally:
        for worker in running.values():
            worker.kill()
    if failures:
        failures.sort(key=lambda f: f.index)
        raise failures[0].to_error()
    return results
