"""Deterministic fan-out of independent simulation cells across processes.

Sweeps, chaos campaigns, and benchmarks all reduce to the same shape:
run many *independent* (config, app, seed) cells and merge the results.
:func:`parallel_map` fans the cells over a ``multiprocessing`` pool and
returns results **in submission order**, so a parallel sweep merges into
exactly the artifact a serial sweep produces — every cell is a full
simulation with its own seed, and cells never share mutable state.

Two constraints shape the implementation:

* Cell functions are usually closures (over a runner, a config override,
  a campaign plan) and closures cannot cross a pickle boundary.  The
  pool therefore uses the ``fork`` start method and the callable is
  stashed in a module global *before* the workers are forked — children
  inherit it by memory snapshot, and only integer indices and the
  (picklable) results cross the pipe.
* Where ``fork`` is unavailable (non-POSIX platforms) or parallelism is
  not requested, the same call degrades to a plain serial loop, keeping
  ``--jobs 1`` and ``--jobs N`` bit-identical by construction.

Results must be picklable: simulation cells should return slim payloads
(e.g. a :class:`~repro.system.RunResult` with ``machine=None``) rather
than live machines, whose event heaps hold lambdas.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

# Worker context, set in the parent immediately before forking the pool
# and inherited by the children.  Only ever read by _call_indexed inside
# a worker; reset in the parent once the pool is done.
_WORKER_FN: Optional[Callable] = None
_WORKER_ITEMS: Optional[Sequence] = None


def fork_available() -> bool:
    """Whether the fork start method (required for closures) exists."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (= auto)."""
    return max(1, os.cpu_count() or 1)


def _call_indexed(index: int):
    """Run one cell inside a worker (context inherited at fork)."""
    assert _WORKER_FN is not None and _WORKER_ITEMS is not None
    return _WORKER_FN(_WORKER_ITEMS[index])


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Returns results in item order regardless of completion order, so the
    caller's merge is deterministic.  Falls back to a serial loop when
    ``jobs <= 1``, there are fewer than two items, or fork is missing.

    ``jobs=0`` means auto (one worker per CPU).
    """
    work = list(items)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(work) <= 1 or not fork_available():
        return [fn(item) for item in work]
    global _WORKER_FN, _WORKER_ITEMS
    if _WORKER_FN is not None:
        # A nested parallel_map (e.g. a cell that itself sweeps) would
        # clobber the parent's worker context; run it serially instead.
        return [fn(item) for item in work]
    _WORKER_FN, _WORKER_ITEMS = fn, work
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(jobs, len(work))) as pool:
            return pool.map(_call_indexed, range(len(work)), chunksize)
    finally:
        _WORKER_FN = None
        _WORKER_ITEMS = None
