"""Benchmark harness: regenerates every table and figure in the paper.

* :mod:`repro.harness.runner` — sweeps (configuration x application)
  grids with memoization.
* :mod:`repro.harness.metrics` — turns :class:`~repro.system.RunResult`
  into the rows the paper reports (speedups, squash rates, set sizes,
  arbiter occupancies, traffic breakdowns).
* :mod:`repro.harness.tables` / :mod:`repro.harness.figures` — render
  Table 3, Table 4, Figure 9, Figure 10, and Figure 11 as text.
* :mod:`repro.harness.experiments` — the experiment registry mapping each
  paper artifact to the code that regenerates it.
"""

from repro.harness.experiments import EXPERIMENTS, Experiment
from repro.harness.metrics import (
    CharacterizationRow,
    CommitRow,
    speedup_over,
    traffic_breakdown_normalized,
)
from repro.harness.runner import ALL_APPS, COMMERCIAL_APPS, SPLASH2_APPS, SweepRunner

__all__ = [
    "SweepRunner",
    "SPLASH2_APPS",
    "COMMERCIAL_APPS",
    "ALL_APPS",
    "speedup_over",
    "traffic_breakdown_normalized",
    "CharacterizationRow",
    "CommitRow",
    "Experiment",
    "EXPERIMENTS",
]
