"""Core-throughput measurement: events/sec and commits/sec.

The simulator's discrete-event loop is the binding constraint on every
sweep in the harness (figure regeneration, chaos matrices, the crash
acceptance sweep), so this module pins *simulator throughput* itself:

* :func:`measure_litmus_commit_heavy` — the litmus suite under a
  BulkSC configuration with tiny chunks, so nearly every instruction
  pays the full arbitrate/grant/expand/ack pipeline.  This is the
  workload most sensitive to the signature-kernel hot path.
* :func:`measure_synthetic` — one synthetic application at a realistic
  chunk size, dominated by the per-access path (cache, chunking,
  signatures accumulating).

Both report machine-independent *work counts* (events fired, chunk
commits, instructions) alongside wall-clock rates, so a recorded
baseline can distinguish "the simulator got slower" from "the workload
got bigger".  ``benchmarks/bench_core.py`` persists the numbers in
``benchmarks/BENCH_core.json`` and gates regressions in CI;
``python -m repro profile`` wraps the same runs in :mod:`cProfile`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cpu.isa import Compute
from repro.cpu.thread import ThreadProgram
from repro.memory.address import AddressMap, AddressSpace
from repro.params import NAMED_CONFIGS, SystemConfig
from repro.system import run_workload

#: Stagger prefixes used by the commit-heavy litmus sweep (the same
#: interleaving spread the chaos campaigns use).
LITMUS_STAGGERS: Tuple[Tuple[int, int], ...] = ((1, 1), (1, 60), (60, 1), (200, 7))


@dataclass
class CorePerfResult:
    """Throughput observed over one measured workload."""

    name: str
    runs: int
    events: int
    commits: int
    instructions: int
    cycles: float
    wall_s: float
    repeats: int = 1

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def commits_per_sec(self) -> float:
        return self.commits / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def instructions_per_sec(self) -> float:
        return self.instructions / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "events": self.events,
            "commits": self.commits,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "commits_per_sec": round(self.commits_per_sec, 1),
            "instructions_per_sec": round(self.instructions_per_sec, 1),
        }

    def render(self) -> str:
        return (
            f"{self.name}: {self.runs} runs, {self.events} events, "
            f"{self.commits} commits in {self.wall_s:.3f}s -> "
            f"{self.events_per_sec:,.0f} events/s, "
            f"{self.commits_per_sec:,.0f} commits/s"
        )


def _commit_heavy_config(config_name: str, seed: int, chunk_size: int) -> SystemConfig:
    config = NAMED_CONFIGS[config_name](seed=seed)
    if config.bulksc is not None:
        config = config.with_bulksc(chunk_size_instructions=chunk_size)
    return config


def _litmus_cells(seed: int) -> List[Tuple[str, int, Tuple[int, int]]]:
    from repro.verify.litmus import all_litmus_tests

    return [
        (test.name, seed, stagger)
        for test in all_litmus_tests()
        for stagger in LITMUS_STAGGERS
    ]


def run_litmus_cell(
    test_name: str,
    config: SystemConfig,
    stagger: Tuple[int, int],
    record_history: bool = False,
):
    """Run one litmus test under ``config`` with a stagger prefix."""
    from repro.verify.litmus import all_litmus_tests

    test = next(t for t in all_litmus_tests() if t.name == test_name)
    space = AddressSpace(
        AddressMap(config.memory.words_per_line, config.num_directories)
    )
    addrs = {
        var: space.allocate(var, config.memory.words_per_line).start_word
        for var in test.variables
    }
    programs = [
        ThreadProgram([Compute(stagger[i % len(stagger)])] + ops, name=f"t{i}")
        for i, ops in enumerate(test.build(addrs))
    ]
    return run_workload(config, programs, space, record_history=record_history)


def measure_litmus_commit_heavy(
    config_name: str = "BSCdypvt",
    seed: int = 0,
    chunk_size: int = 4,
    repeats: int = 1,
) -> CorePerfResult:
    """Sweep the litmus suite with tiny chunks: the commit-pipeline stress.

    A ``chunk_size`` of a few instructions makes every litmus operation
    commit through the arbiter, so throughput here is dominated by the
    disambiguation predicates (arbiter R/W checks, BDM intersections,
    DirBDM expansion) rather than by program execution.
    """
    cells = _litmus_cells(seed)
    best_wall = float("inf")
    events = commits = instructions = 0
    cycles = 0.0
    for __ in range(max(1, repeats)):
        events = commits = instructions = 0
        cycles = 0.0
        start = time.perf_counter()  # detlint: ok[DET003] — benchmark wall-clock, never simulated state
        for test_name, cell_seed, stagger in cells:
            config = _commit_heavy_config(config_name, cell_seed, chunk_size)
            result = run_litmus_cell(test_name, config, stagger)
            events += result.machine.sim.events_fired
            commits += int(result.stat("commit.completed"))
            instructions += result.total_instructions
            cycles += result.cycles
        best_wall = min(best_wall, time.perf_counter() - start)  # detlint: ok[DET003] — benchmark wall-clock, never simulated state
    return CorePerfResult(
        name=f"litmus-commit-heavy[{config_name},chunk={chunk_size}]",
        runs=len(cells),
        events=events,
        commits=commits,
        instructions=instructions,
        cycles=cycles,
        wall_s=best_wall,
        repeats=repeats,
    )


def measure_synthetic(
    app: str = "barnes",
    config_name: str = "BSCdypvt",
    instructions: int = 4000,
    seed: int = 0,
    repeats: int = 1,
) -> CorePerfResult:
    """One synthetic application at the paper's chunk size."""
    from repro.harness.runner import build_app_workload

    best_wall = float("inf")
    events = commits = retired = 0
    cycles = 0.0
    for __ in range(max(1, repeats)):
        config = NAMED_CONFIGS[config_name](seed=seed)
        workload = build_app_workload(app, config, instructions, seed)
        start = time.perf_counter()  # detlint: ok[DET003] — benchmark wall-clock, never simulated state
        result = run_workload(
            config, workload.programs, workload.address_space, record_history=False
        )
        best_wall = min(best_wall, time.perf_counter() - start)  # detlint: ok[DET003] — benchmark wall-clock, never simulated state
        events = result.machine.sim.events_fired
        commits = int(result.stat("commit.completed"))
        retired = result.total_instructions
        cycles = result.cycles
    return CorePerfResult(
        name=f"synthetic[{app},{config_name},{instructions}i]",
        runs=1,
        events=events,
        commits=commits,
        instructions=retired,
        cycles=cycles,
        wall_s=best_wall,
        repeats=repeats,
    )


def measure_core(
    seed: int = 0,
    repeats: int = 2,
    synthetic_instructions: int = 4000,
) -> Dict[str, CorePerfResult]:
    """The standard core-throughput battery (used by bench and CI gate)."""
    return {
        "litmus_commit_heavy": measure_litmus_commit_heavy(
            seed=seed, repeats=repeats
        ),
        "synthetic": measure_synthetic(
            seed=seed, instructions=synthetic_instructions, repeats=repeats
        ),
    }


# ---------------------------------------------------------------------------
# Profiling (python -m repro profile)
# ---------------------------------------------------------------------------

def profile_run(
    target: str = "litmus",
    config_name: str = "BSCdypvt",
    app: str = "barnes",
    instructions: int = 4000,
    seed: int = 0,
    top: int = 25,
    sort: str = "cumulative",
    as_json: bool = False,
) -> str:
    """Run one workload under :mod:`cProfile`; return the top-N report.

    The text report is the classic pstats table followed by a rollup of
    ``tottime`` per simulator subsystem (``cpu``/``engine``/
    ``signatures``/``core``/...).  With ``as_json`` the same data is
    returned as a machine-readable JSON document instead (consumed by the
    CI perf-smoke artifact).
    """
    import cProfile
    import io
    import pstats

    if target == "litmus":
        def work() -> None:
            for test_name, cell_seed, stagger in _litmus_cells(seed):
                config = _commit_heavy_config(config_name, cell_seed, 4)
                run_litmus_cell(test_name, config, stagger)
    elif target == "synthetic":
        from repro.harness.runner import build_app_workload

        config = NAMED_CONFIGS[config_name](seed=seed)
        workload = build_app_workload(app, config, instructions, seed)

        def work() -> None:
            run_workload(
                config,
                workload.programs,
                workload.address_space,
                record_history=False,
            )
    else:
        raise ValueError(f"unknown profile target {target!r}")

    profiler = cProfile.Profile()
    profiler.enable()
    work()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats(sort).print_stats(top)
    report = out.getvalue()
    data = profile_data(stats, top=top, sort=sort)
    data["target"] = target
    data["config"] = config_name
    if as_json:
        import json

        return json.dumps(data, indent=2, sort_keys=True)
    return report + "\n" + format_subsystems(data)


def _subsystem_of(filename: str) -> str:
    """Map a profiled filename onto a simulator subsystem bucket.

    Files under ``repro/<package>/`` group by package (``cpu``,
    ``engine``, ``signatures``, ``core``, ...); ``repro``-level modules
    (``system.py``, ``params.py``) report as ``repro``, and everything
    outside the tree (stdlib, builtins) as ``other``.
    """
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    at = normalized.rfind(marker)
    if at < 0:
        return "other"
    tail = normalized[at + len(marker):]
    if "/" in tail:
        return tail.split("/", 1)[0]
    return "repro"


def profile_data(stats, top: int = 25, sort: str = "cumulative") -> dict:
    """Structured view of a :class:`pstats.Stats`: hot rows + subsystems.

    Returns a JSON-ready dict with the ``top`` functions under the given
    sort order and cumulative time per simulator subsystem (the
    ``tottime`` sum over each package's functions, so subsystem numbers
    add up to the run total instead of double-counting callees).
    """
    sort_key = {"cumulative": "cumtime", "tottime": "tottime", "calls": "calls"}[sort]
    rows = []
    subsystems: dict = {}
    total_tottime = 0.0
    total_calls = 0
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        subsystem = _subsystem_of(filename)
        rows.append(
            {
                "function": func,
                "file": filename,
                "line": line,
                "subsystem": subsystem,
                "calls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
        bucket = subsystems.setdefault(
            subsystem, {"tottime": 0.0, "calls": 0, "functions": 0}
        )
        bucket["tottime"] += tt
        bucket["calls"] += nc
        bucket["functions"] += 1
        total_tottime += tt
        total_calls += nc
    rows.sort(key=lambda row: (row[sort_key], row["file"], row["function"]), reverse=True)
    return {
        "sort": sort,
        "total_tottime": total_tottime,
        "total_calls": total_calls,
        "top": rows[:top],
        "subsystems": subsystems,
    }


def format_subsystems(data: dict) -> str:
    """Render the per-subsystem rollup as an aligned text table."""
    total = data["total_tottime"] or 1.0
    lines = ["time by subsystem (tottime, so rows sum to the total):"]
    ordered = sorted(
        data["subsystems"].items(), key=lambda kv: kv[1]["tottime"], reverse=True
    )
    for name, bucket in ordered:
        lines.append(
            f"  {name:<12} {bucket['tottime']:8.3f}s "
            f"{100.0 * bucket['tottime'] / total:5.1f}%  "
            f"{bucket['calls']:>10} calls  {bucket['functions']:>4} functions"
        )
    lines.append(f"  {'total':<12} {data['total_tottime']:8.3f}s")
    return "\n".join(lines)
