"""Figure data series and ASCII rendering (Figures 9, 10, 11)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.harness.metrics import geometric_mean


def render_grouped_bars(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    apps: Sequence[str],
    value_format: str = "{:.2f}",
) -> str:
    """Render ``{config: {app: value}}`` as a text table plus mean column.

    The paper plots grouped bars; a table carries the same information
    (who wins, by what factor) in a terminal.
    """
    configs = list(series.keys())
    headers = ["app"] + configs
    lines = ["# " + title, "  ".join(h.rjust(9) for h in headers)]
    for app in apps:
        cells = [app.rjust(9)]
        for config in configs:
            value = series[config].get(app, float("nan"))
            cells.append(value_format.format(value).rjust(9))
        lines.append("  ".join(cells))
    # Geometric-mean row (the paper's SP2-G.M.).
    cells = ["G.M.".rjust(9)]
    for config in configs:
        values = [series[config][app] for app in apps if app in series[config]]
        cells.append(value_format.format(geometric_mean(values)).rjust(9))
    lines.append("  ".join(cells))
    return "\n".join(lines)


def render_stacked_traffic(
    title: str,
    breakdowns: Mapping[str, Mapping[str, Mapping[str, float]]],
    apps: Sequence[str],
) -> str:
    """Render Figure 11-style data: {config: {app: {class: fraction}}}."""
    lines = ["# " + title]
    configs = list(breakdowns.keys())
    classes = ["Rd/Wr", "RdSig", "WrSig", "Inv", "Other"]
    header = ["app", "config"] + classes + ["total"]
    lines.append("  ".join(h.rjust(8) for h in header))
    for app in apps:
        for config in configs:
            breakdown = breakdowns[config].get(app)
            if breakdown is None:
                continue
            total = sum(breakdown.get(c, 0.0) for c in classes)
            cells = [app.rjust(8), config.rjust(8)]
            cells += [f"{breakdown.get(c, 0.0):.3f}".rjust(8) for c in classes]
            cells.append(f"{total:.3f}".rjust(8))
            lines.append("  ".join(cells))
    return "\n".join(lines)


def series_geometric_means(
    series: Mapping[str, Mapping[str, float]], apps: Sequence[str]
) -> Dict[str, float]:
    """Geometric mean per config over ``apps``."""
    return {
        config: geometric_mean(
            [values[app] for app in apps if app in values]
        )
        for config, values in series.items()
    }
