"""Sweep runner: (configuration, application) grids with memoization.

One :class:`SweepRunner` caches every simulation it runs, so a benchmark
that needs RC numbers for normalization shares them across figures
instead of re-simulating.  With ``jobs > 1`` a grid sweep fans its
uncached cells over a worker pool (see :mod:`repro.harness.parallel`);
results merge in grid order, so the artifact is identical to a serial
sweep's.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.parallel import parallel_map
from repro.params import NAMED_CONFIGS, SystemConfig
from repro.system import RunResult, run_workload
from repro.workloads.commercial import COMMERCIAL_ORDER, commercial_workload
from repro.workloads.splash2 import SPLASH2_ORDER, splash2_workload

SPLASH2_APPS: Tuple[str, ...] = tuple(SPLASH2_ORDER)
COMMERCIAL_APPS: Tuple[str, ...] = tuple(COMMERCIAL_ORDER)
ALL_APPS: Tuple[str, ...] = SPLASH2_APPS + COMMERCIAL_APPS

#: The configuration names of Table 2, in the paper's plotting order.
FIGURE9_CONFIGS = ("SC", "RC", "SC++", "BSCbase", "BSCdypvt", "BSCexact", "BSCstpvt")


def build_app_workload(app: str, config: SystemConfig, instructions: int, seed: int):
    """Build the synthetic workload standing in for ``app``."""
    if app in COMMERCIAL_APPS:
        return commercial_workload(app, config, instructions, seed)
    return splash2_workload(app, config, instructions, seed)


class SweepRunner:
    """Runs and caches simulations over a (config, app) grid.

    ``jobs`` controls how many worker processes a :meth:`sweep` may use;
    single-cell :meth:`result` calls always run in-process so their live
    machine stays available to callers.
    """

    def __init__(
        self,
        instructions_per_thread: int = 20_000,
        seed: int = 0,
        record_history: bool = False,
        config_overrides: Optional[Dict[str, Callable[[SystemConfig], SystemConfig]]] = None,
        jobs: int = 1,
    ):
        self.instructions_per_thread = instructions_per_thread
        self.seed = seed
        self.record_history = record_history
        self.config_overrides = config_overrides or {}
        self.jobs = jobs
        self._cache: Dict[Tuple, RunResult] = {}

    def _key(self, config_name: str, app: str) -> Tuple:
        # The run parameters participate in the key so that mutating the
        # runner between calls (seed, budget, history) can never serve a
        # stale result recorded under the old parameters.
        return (
            config_name,
            app,
            self.instructions_per_thread,
            self.seed,
            self.record_history,
        )

    def config_for(self, config_name: str) -> SystemConfig:
        try:
            config = NAMED_CONFIGS[config_name](seed=self.seed)
        except KeyError:
            raise KeyError(
                f"unknown configuration {config_name!r}; "
                f"choose from {sorted(NAMED_CONFIGS)}"
            ) from None
        override = self.config_overrides.get(config_name)
        if override is not None:
            config = override(config).validate()
        return config

    def _run_cell(self, cell: Tuple[str, str]) -> RunResult:
        config_name, app = cell
        config = self.config_for(config_name)
        workload = build_app_workload(
            app, config, self.instructions_per_thread, self.seed
        )
        return run_workload(
            config,
            workload.programs,
            workload.address_space,
            record_history=self.record_history,
        )

    def _run_cell_slim(self, cell: Tuple[str, str]) -> RunResult:
        """Worker-side cell: drop the unpicklable machine before return."""
        return self._run_cell(cell).slim()

    def result(self, config_name: str, app: str) -> RunResult:
        """Run (or fetch) one simulation."""
        key = self._key(config_name, app)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._run_cell((config_name, app))
        self._cache[key] = result
        return result

    def sweep(
        self, config_names: List[str], apps: List[str]
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run the full grid; returns {(config, app): result}.

        With ``jobs > 1`` the uncached cells run across a process pool;
        parallel results carry ``machine=None`` (they crossed a pickle
        boundary) but are otherwise identical to serial ones, and the
        returned mapping is keyed and ordered exactly as in a serial
        sweep.
        """
        cells = [(name, app) for app in apps for name in config_names]
        missing = [c for c in cells if self._key(*c) not in self._cache]
        if missing and self.jobs != 1:
            for cell, result in zip(
                missing, parallel_map(self._run_cell_slim, missing, jobs=self.jobs)
            ):
                self._cache[self._key(*cell)] = result
        out: Dict[Tuple[str, str], RunResult] = {}
        for name, app in cells:
            out[(name, app)] = self.result(name, app)
        return out

    def cached_count(self) -> int:
        return len(self._cache)
