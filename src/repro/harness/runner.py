"""Sweep runner: (configuration, application) grids with memoization.

One :class:`SweepRunner` caches every simulation it runs, so a benchmark
that needs RC numbers for normalization shares them across figures
instead of re-simulating.  With ``jobs > 1`` a grid sweep fans its
uncached cells over a worker pool (see :mod:`repro.harness.parallel`);
results merge in grid order, so the artifact is identical to a serial
sweep's.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.parallel import CellFailure, parallel_map
from repro.params import NAMED_CONFIGS, SystemConfig
from repro.system import RunResult, run_workload
from repro.workloads.commercial import COMMERCIAL_ORDER, commercial_workload
from repro.workloads.splash2 import SPLASH2_ORDER, splash2_workload

SPLASH2_APPS: Tuple[str, ...] = tuple(SPLASH2_ORDER)
COMMERCIAL_APPS: Tuple[str, ...] = tuple(COMMERCIAL_ORDER)
ALL_APPS: Tuple[str, ...] = SPLASH2_APPS + COMMERCIAL_APPS

#: The configuration names of Table 2, in the paper's plotting order.
FIGURE9_CONFIGS = ("SC", "RC", "SC++", "BSCbase", "BSCdypvt", "BSCexact", "BSCstpvt")


def memo_key(
    config_name: str,
    app: str,
    instructions: int,
    seed: int,
    record_history: bool,
) -> Tuple[str, str, int, int, bool]:
    """The canonical memo key of one simulation cell.

    This tuple of primitives is the identity of a run everywhere results
    are cached or deduplicated: the :class:`SweepRunner` cache and the
    campaign store's resume logic (:mod:`repro.campaign.queue`) both key
    on it, so it must be stable across processes, pickle round-trips,
    and interpreter invocations — only plain, order-insensitive values
    belong here.
    """
    return (config_name, app, int(instructions), int(seed), bool(record_history))


def build_app_workload(app: str, config: SystemConfig, instructions: int, seed: int):
    """Build the synthetic workload standing in for ``app``."""
    if app in COMMERCIAL_APPS:
        return commercial_workload(app, config, instructions, seed)
    return splash2_workload(app, config, instructions, seed)


class SweepRunner:
    """Runs and caches simulations over a (config, app) grid.

    ``jobs`` controls how many worker processes a :meth:`sweep` may use;
    single-cell :meth:`result` calls always run in-process so their live
    machine stays available to callers.
    """

    def __init__(
        self,
        instructions_per_thread: int = 20_000,
        seed: int = 0,
        record_history: bool = False,
        config_overrides: Optional[Dict[str, Callable[[SystemConfig], SystemConfig]]] = None,
        jobs: int = 1,
        cell_timeout: Optional[float] = None,
    ):
        self.instructions_per_thread = instructions_per_thread
        self.seed = seed
        self.record_history = record_history
        self.config_overrides = config_overrides or {}
        self.jobs = jobs
        #: Per-cell wall-clock budget (seconds) for :meth:`sweep`: a
        #: livelocked simulation is killed and recorded in
        #: :attr:`failed` instead of hanging the whole sweep.
        self.cell_timeout = cell_timeout
        self._cache: Dict[Tuple, RunResult] = {}
        #: Cells lost to infra failures (timeout / worker death), keyed
        #: like the cache; they are skipped by :meth:`sweep`'s output
        #: rather than raising.
        self.failed: Dict[Tuple, CellFailure] = {}

    def memo_key(self, config_name: str, app: str) -> Tuple:
        """The cache key of one cell under this runner's parameters.

        The run parameters participate in the key so that mutating the
        runner between calls (seed, budget, history) can never serve a
        stale result recorded under the old parameters.
        """
        return memo_key(
            config_name,
            app,
            self.instructions_per_thread,
            self.seed,
            self.record_history,
        )

    # Backwards-compatible alias (pre-campaign spelling).
    _key = memo_key

    def config_for(self, config_name: str) -> SystemConfig:
        try:
            config = NAMED_CONFIGS[config_name](seed=self.seed)
        except KeyError:
            raise KeyError(
                f"unknown configuration {config_name!r}; "
                f"choose from {sorted(NAMED_CONFIGS)}"
            ) from None
        override = self.config_overrides.get(config_name)
        if override is not None:
            config = override(config).validate()
        return config

    def _run_cell(self, cell: Tuple[str, str]) -> RunResult:
        config_name, app = cell
        config = self.config_for(config_name)
        workload = build_app_workload(
            app, config, self.instructions_per_thread, self.seed
        )
        return run_workload(
            config,
            workload.programs,
            workload.address_space,
            record_history=self.record_history,
        )

    def _run_cell_slim(self, cell: Tuple[str, str]) -> RunResult:
        """Worker-side cell: drop the unpicklable machine before return."""
        return self._run_cell(cell).slim()

    def result(self, config_name: str, app: str) -> RunResult:
        """Run (or fetch) one simulation."""
        key = self._key(config_name, app)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._run_cell((config_name, app))
        self._cache[key] = result
        return result

    def sweep(
        self, config_names: List[str], apps: List[str]
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run the full grid; returns {(config, app): result}.

        With ``jobs > 1`` the uncached cells run across a process pool;
        parallel results carry ``machine=None`` (they crossed a pickle
        boundary) but are otherwise identical to serial ones, and the
        returned mapping is keyed and ordered exactly as in a serial
        sweep.  With :attr:`cell_timeout` set, a cell that exceeds its
        wall-clock budget (or whose worker dies) is recorded in
        :attr:`failed` and omitted from the mapping instead of raising.
        """
        cells = [(name, app) for app in apps for name in config_names]
        missing = [
            c
            for c in cells
            if self.memo_key(*c) not in self._cache
            and self.memo_key(*c) not in self.failed
        ]
        if missing and (self.jobs != 1 or self.cell_timeout is not None):
            for cell, result in zip(
                missing,
                parallel_map(
                    self._run_cell_slim,
                    missing,
                    jobs=self.jobs,
                    timeout=self.cell_timeout,
                    failure_mode="return",
                ),
            ):
                if isinstance(result, CellFailure):
                    self.failed[self.memo_key(*cell)] = result
                else:
                    self._cache[self.memo_key(*cell)] = result
        out: Dict[Tuple[str, str], RunResult] = {}
        for name, app in cells:
            if self.memo_key(name, app) in self.failed:
                continue
            out[(name, app)] = self.result(name, app)
        return out

    def cached_count(self) -> int:
        return len(self._cache)
