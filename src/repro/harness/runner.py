"""Sweep runner: (configuration, application) grids with memoization.

One :class:`SweepRunner` caches every simulation it runs, so a benchmark
that needs RC numbers for normalization shares them across figures
instead of re-simulating.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.params import NAMED_CONFIGS, SystemConfig
from repro.system import RunResult, run_workload
from repro.workloads.commercial import COMMERCIAL_ORDER, commercial_workload
from repro.workloads.splash2 import SPLASH2_ORDER, splash2_workload

SPLASH2_APPS: Tuple[str, ...] = tuple(SPLASH2_ORDER)
COMMERCIAL_APPS: Tuple[str, ...] = tuple(COMMERCIAL_ORDER)
ALL_APPS: Tuple[str, ...] = SPLASH2_APPS + COMMERCIAL_APPS

#: The configuration names of Table 2, in the paper's plotting order.
FIGURE9_CONFIGS = ("SC", "RC", "SC++", "BSCbase", "BSCdypvt", "BSCexact", "BSCstpvt")


def build_app_workload(app: str, config: SystemConfig, instructions: int, seed: int):
    """Build the synthetic workload standing in for ``app``."""
    if app in COMMERCIAL_APPS:
        return commercial_workload(app, config, instructions, seed)
    return splash2_workload(app, config, instructions, seed)


class SweepRunner:
    """Runs and caches simulations over a (config, app) grid."""

    def __init__(
        self,
        instructions_per_thread: int = 20_000,
        seed: int = 0,
        record_history: bool = False,
        config_overrides: Optional[Dict[str, Callable[[SystemConfig], SystemConfig]]] = None,
    ):
        self.instructions_per_thread = instructions_per_thread
        self.seed = seed
        self.record_history = record_history
        self.config_overrides = config_overrides or {}
        self._cache: Dict[Tuple[str, str], RunResult] = {}

    def config_for(self, config_name: str) -> SystemConfig:
        try:
            config = NAMED_CONFIGS[config_name](seed=self.seed)
        except KeyError:
            raise KeyError(
                f"unknown configuration {config_name!r}; "
                f"choose from {sorted(NAMED_CONFIGS)}"
            ) from None
        override = self.config_overrides.get(config_name)
        if override is not None:
            config = override(config).validate()
        return config

    def result(self, config_name: str, app: str) -> RunResult:
        """Run (or fetch) one simulation."""
        key = (config_name, app)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self.config_for(config_name)
        workload = build_app_workload(
            app, config, self.instructions_per_thread, self.seed
        )
        result = run_workload(
            config,
            workload.programs,
            workload.address_space,
            record_history=self.record_history,
        )
        self._cache[key] = result
        return result

    def sweep(
        self, config_names: List[str], apps: List[str]
    ) -> Dict[Tuple[str, str], RunResult]:
        """Run the full grid; returns {(config, app): result}."""
        out: Dict[Tuple[str, str], RunResult] = {}
        for app in apps:
            for name in config_names:
                out[(name, app)] = self.result(name, app)
        return out

    def cached_count(self) -> int:
        return len(self._cache)
