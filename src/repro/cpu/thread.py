"""Architectural thread state: program, program counter, registers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpu.isa import Op
from repro.errors import ProgramError


class ThreadProgram:
    """An immutable straight-line sequence of micro-ops."""

    def __init__(self, ops: Sequence[Op], name: str = "program"):
        self._ops: List[Op] = list(ops)
        self.name = name
        self._total_instructions = sum(op.instruction_count for op in self._ops)
        self._memory_ops = sum(1 for op in self._ops if op.is_memory)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index: int) -> Op:
        return self._ops[index]

    def __iter__(self):
        return iter(self._ops)

    @property
    def total_instructions(self) -> int:
        """Dynamic instruction count (Compute bursts expanded)."""
        return self._total_instructions

    @property
    def memory_op_count(self) -> int:
        return self._memory_ops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ThreadProgram {self.name!r} ops={len(self._ops)} "
            f"instructions={self._total_instructions}>"
        )


class ThreadContext:
    """Mutable per-thread execution state."""

    def __init__(self, proc: int, program: ThreadProgram):
        self.proc = proc
        self.program = program
        self.pc = 0
        self.registers: Dict[str, int] = {}
        self.finished = False
        self.retired_instructions = 0

    def current_op(self) -> Optional[Op]:
        if self.pc >= len(self.program):
            return None
        return self.program[self.pc]

    def advance(self) -> None:
        if self.pc >= len(self.program):
            raise ProgramError(f"proc {self.proc}: advance past program end")
        self.retired_instructions += self.program[self.pc].instruction_count
        self.pc += 1
        if self.pc >= len(self.program):
            self.finished = True

    def write_register(self, name: str, value: int) -> None:
        self.registers[name] = value

    def read_register(self, name: str) -> int:
        try:
            return self.registers[name]
        except KeyError:
            raise ProgramError(
                f"proc {self.proc}: read of unwritten register {name!r}"
            ) from None
