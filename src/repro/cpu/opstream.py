"""Pre-compiled flat op-streams for the batched interpreter.

A :class:`ThreadProgram` is immutable, so the per-op work the scalar
interpreter repeats on every execution — ``isinstance`` dispatch on the
op dataclass, ``resolve_operand`` type tests, ``line_of`` shifts — can be
done once, ahead of time.  :func:`stream_for` lowers a program into
parallel tuples of small-int kind codes and pre-split arguments (the
same flattening the paper applies to memory accesses: per-item
bookkeeping is hoisted out of the hot loop and amortized over the whole
chunk).

Only the four straight-line kinds get fast-path codes; everything that
can block or synchronize (acquire, barrier, spin, I/O) is marked
``K_SLOW`` and executed by the scalar interpreter, which keeps the
batched loop free of rarely-taken control flow.

``LockRelease`` lowers to a plain store of the literal 0: the scalar
release handler is the store handler with a pre-resolved value, so the
lowering is exact (and keeps releases on the fast path — they are how
workloads hand locks over).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cpu.isa import (
    Compute,
    Fence,
    Load,
    LockRelease,
    OpKind,
    Reg,
    RegPlus,
    Store,
)
from repro.cpu.thread import ThreadProgram

# Op kind codes (parallel `kinds` array).
K_COMPUTE = 0
K_LOAD = 1
K_STORE = 2
K_FENCE = 3
K_SLOW = 4  # acquire / barrier / spin / io: scalar fallback

# Store-value spec codes (first element of a `vspecs` entry).
V_LIT = 0  # (V_LIT, value, 0)
V_REG = 1  # (V_REG, reg_name, 0)
V_REGPLUS = 2  # (V_REGPLUS, reg_name, addend)


class OpStream:
    """One program lowered to parallel arrays, for one line geometry."""

    __slots__ = ("length", "line_shift", "kinds", "args", "lines", "regs", "vspecs")

    def __init__(
        self,
        length: int,
        line_shift: int,
        kinds: Tuple[int, ...],
        args: Tuple[int, ...],
        lines: Tuple[int, ...],
        regs: Tuple[Optional[str], ...],
        vspecs: Tuple[Optional[tuple], ...],
    ):
        self.length = length
        self.line_shift = line_shift
        #: Kind code per op (K_*).
        self.kinds = kinds
        #: COMPUTE: burst count; LOAD/STORE: word address; else 0.
        self.args = args
        #: Pre-shifted line address for memory ops; 0 otherwise.
        self.lines = lines
        #: Destination register name for LOAD; None otherwise.
        self.regs = regs
        #: Pre-split store-value spec (V_* triple) for STORE; None otherwise.
        self.vspecs = vspecs


def _lower(program: ThreadProgram, line_shift: int) -> OpStream:
    kinds = []
    args = []
    lines = []
    regs = []
    vspecs = []
    for op in program:
        kind = op.kind
        if kind is OpKind.COMPUTE:
            assert isinstance(op, Compute)
            kinds.append(K_COMPUTE)
            args.append(op.count)
            lines.append(0)
            regs.append(None)
            vspecs.append(None)
        elif kind is OpKind.LOAD:
            assert isinstance(op, Load)
            kinds.append(K_LOAD)
            args.append(op.addr)
            lines.append(op.addr >> line_shift)
            regs.append(op.reg)
            vspecs.append(None)
        elif kind is OpKind.STORE:
            assert isinstance(op, Store)
            value = op.value
            if isinstance(value, int):
                vspec = (V_LIT, value, 0)
            elif isinstance(value, Reg):
                vspec = (V_REG, value.name, 0)
            elif isinstance(value, RegPlus):
                vspec = (V_REGPLUS, value.name, value.addend)
            else:  # unknown operand type: let the scalar path raise
                kinds.append(K_SLOW)
                args.append(0)
                lines.append(0)
                regs.append(None)
                vspecs.append(None)
                continue
            kinds.append(K_STORE)
            args.append(op.addr)
            lines.append(op.addr >> line_shift)
            regs.append(None)
            vspecs.append(vspec)
        elif kind is OpKind.RELEASE:
            assert isinstance(op, LockRelease)
            kinds.append(K_STORE)
            args.append(op.addr)
            lines.append(op.addr >> line_shift)
            regs.append(None)
            vspecs.append((V_LIT, 0, 0))
        elif kind is OpKind.FENCE:
            assert isinstance(op, Fence)
            kinds.append(K_FENCE)
            args.append(0)
            lines.append(0)
            regs.append(None)
            vspecs.append(None)
        else:
            kinds.append(K_SLOW)
            args.append(0)
            lines.append(0)
            regs.append(None)
            vspecs.append(None)
    return OpStream(
        len(kinds),
        line_shift,
        tuple(kinds),
        tuple(args),
        tuple(lines),
        tuple(regs),
        tuple(vspecs),
    )


def stream_for(program: ThreadProgram, line_shift: int) -> OpStream:
    """The lowered stream for ``program``, memoized on the program.

    The lowering is pure per ``(program, line_shift)``; the memo lives on
    the (immutable) program object so repeated runs of the same workload
    compile once.
    """
    cache = getattr(program, "_op_stream_cache", None)
    if cache is None:
        cache = {}
        program._op_stream_cache = cache  # type: ignore[attr-defined]
    stream = cache.get(line_shift)
    if stream is None:
        stream = cache[line_shift] = _lower(program, line_shift)
    return stream
