"""The retirement-window timing model.

All four consistency models share one mechanical skeleton: an out-of-order
core *decodes* (and may start fetching for) an instruction up to
``instruction_window`` dynamic instructions before it *retires*, and
retirement is in program order at ``commit_width`` instructions/cycle.
What differs between models is purely which ops are allowed to *retire
before completing*:

* SC: nothing — but prefetches launched at decode hide part of each miss.
* RC / SC++: stores retire into a buffer / the SHiQ; loads hold retirement
  until their data returns.
* BulkSC: both loads and stores retire speculatively inside the chunk;
  loads still gate *dependent use*, which we approximate the same way as
  RC's load-retirement gate.

:class:`RetirementWindow` tracks the retirement cursor and a ring of
recent retirement timestamps so we can ask "when was this op decoded?" —
the decode time of op *i* is approximately when op *i - window* retired.
Memory-level parallelism is capped by the L1 MSHR file.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.memory.mshr import MshrFile
from repro.params import ProcessorConfig


class RetirementWindow:
    """In-order retirement cursor with decode-ahead timestamps."""

    def __init__(self, config: ProcessorConfig, mshr: MshrFile):
        self.config = config
        self.mshr = mshr
        self.retire_cursor = 0.0
        self._per_instruction = 1.0 / config.commit_width
        self._l1_round_trip = 2.0  # refined by set_l1_round_trip()
        # Ring of the retirement times of the last `instruction_window`
        # dynamic instructions, coarsened to one entry per micro-op.
        self._window: Deque[tuple] = deque()  # (retire_time, instr_count)
        self._window_instructions = 0

    # ------------------------------------------------------------------
    def decode_time(self) -> float:
        """When the op about to retire was decoded.

        The op entered the window when the instruction ``window`` dynamic
        instructions ahead of it retired.  Compute bursts are interpolated
        at pipeline rate so a coarse burst still yields instruction-level
        decode distance.  At startup (window not yet full) decode time
        is 0.
        """
        need = self.config.instruction_window
        if self._window_instructions < need:
            return 0.0
        # :meth:`_push` trims the ring so that the window *minus its
        # oldest entry* always holds fewer than ``need`` instructions —
        # the op ``need`` back therefore always falls in the oldest
        # entry, making this O(1) rather than a walk.
        retire_time, count = self._window[0]
        into_entry = need - (self._window_instructions - count)
        return max(0.0, retire_time - into_entry * self._per_instruction)

    def _push(self, retire_time: float, instructions: int) -> None:
        self._window.append((retire_time, instructions))
        self._window_instructions += instructions
        while (
            self._window
            and self._window_instructions - self._window[0][1]
            >= self.config.instruction_window
        ):
            __, count = self._window.popleft()
            self._window_instructions -= count

    # ------------------------------------------------------------------
    def retire_compute(self, instructions: int) -> float:
        """Retire a compute burst; returns the new cursor."""
        self.retire_cursor += instructions * self._per_instruction
        self._push(self.retire_cursor, instructions)
        return self.retire_cursor

    def retire_memory(
        self,
        latency: float,
        blocking: bool,
        instructions: int = 1,
        extra_ready_time: float = 0.0,
        fetch_at_decode: bool = True,
        line_addr: int = -1,
        unhideable: float = 0.0,
    ) -> float:
        """Retire one memory op and return the new retirement cursor.

        Args:
            latency: Access latency from the coherence controller.
            blocking: If True, retirement waits for the data (loads in
                every model; stores under SC).  If False, the op retires
                at pipeline speed (buffered stores, BulkSC ops).
            instructions: Dynamic instructions this op represents.
            extra_ready_time: An absolute lower bound on retirement (e.g.
                a bounced read's retry completion).
            fetch_at_decode: If True the miss was launched when the op was
                decoded (prefetching / speculative loads); if False the
                fetch starts only at the retirement point (naive SC).
            line_addr: Line accessed; misses occupy an MSHR entry when a
                non-negative line address is given.
            unhideable: Latency that cannot start before the retirement
                point no matter how early the fetch was issued — e.g. the
                global-visibility work (invalidation acknowledgements) an
                SC store must complete at retirement.
        """
        pipeline_time = self.retire_cursor + instructions * self._per_instruction
        visibility_floor = self.retire_cursor + unhideable
        is_miss = latency > self._l1_round_trip
        if blocking and latency > 0:
            fetch_start = self.decode_time() if fetch_at_decode else self.retire_cursor
            if is_miss and line_addr >= 0:
                fetch_start = max(fetch_start, self.mshr.earliest_free(fetch_start))
            completion = fetch_start + latency
            self.retire_cursor = max(
                pipeline_time, completion, extra_ready_time, visibility_floor
            )
            if is_miss and line_addr >= 0:
                self._note_miss(line_addr, completion, fetch_start)
        else:
            self.retire_cursor = max(
                pipeline_time, extra_ready_time, visibility_floor
            )
            if is_miss and line_addr >= 0:
                fetch_start = self.decode_time()
                fetch_start = max(fetch_start, self.mshr.earliest_free(fetch_start))
                self._note_miss(line_addr, fetch_start + latency, fetch_start)
        self._push(self.retire_cursor, instructions)
        return self.retire_cursor

    def _note_miss(self, line_addr: int, completion: float, now: float) -> None:
        """Record an in-flight miss in the MSHR file (merging secondaries)."""
        if self.mshr.in_flight(line_addr, now):
            self.mshr.allocate(line_addr, completion, now)  # merge
            return
        free_at = self.mshr.earliest_free(now)
        self.mshr.allocate(line_addr, completion, max(now, free_at))

    def set_l1_round_trip(self, cycles: float) -> None:
        """Latencies at or below this are hits and bypass the MSHR file."""
        self._l1_round_trip = cycles

    def stall_until(self, time: float) -> float:
        """Externally imposed stall (barrier wait, commit wait, ...)."""
        if time > self.retire_cursor:
            self.retire_cursor = time
        return self.retire_cursor

    @property
    def now(self) -> float:
        return self.retire_cursor
