"""Cross-processor synchronization plumbing.

The simulator needs two rendezvous services that are *not* consistency
semantics (those live in the models) but pure wake-up mechanics:

* **Barriers** — count arrivals per (barrier id, generation); when the
  last participant arrives, every waiter's callback is scheduled.
* **Address watches** — a waiter spinning on a flag or lock registers a
  predicate on a word; whenever a model makes a write to that word
  *visible* it calls :meth:`notify_write`, and satisfied watchers are
  woken.  This gives spin loops exact wake-up times without simulating
  millions of poll iterations; the model charges the re-read latency on
  wake-up, which is the same cost a real spinner pays on its final probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.engine.simulator import Simulator
from repro.errors import SimulationError


@dataclass
class _Watch:
    proc: int
    predicate: Callable[[int], bool]
    callback: Callable[[], None]


@dataclass
class _BarrierState:
    participants: int
    arrived: int = 0
    waiters: List[Callable[[], None]] = field(default_factory=list)


class SyncManager:
    """Barrier arrival counting and address-watch wake-ups."""

    #: Cycles between the releasing event and a waiter observing it; models
    #: the coherence round trip of the final probe.
    WAKE_LATENCY = 20

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._barriers: Dict[Tuple[int, int], _BarrierState] = {}
        self._barrier_generation: Dict[int, int] = {}
        self._watches: Dict[int, List[_Watch]] = {}
        self.barrier_waits = 0
        self.watch_wakeups = 0

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def arrive_barrier(
        self,
        barrier_id: int,
        participants: int,
        proc: int,
        on_release: Callable[[], None],
    ) -> None:
        """Arrive at a barrier; ``on_release`` fires when all have arrived.

        Barriers are reusable: each full round advances the generation.
        """
        generation = self._barrier_generation.get(barrier_id, 0)
        key = (barrier_id, generation)
        state = self._barriers.get(key)
        if state is None:
            state = self._barriers[key] = _BarrierState(participants)
        elif state.participants != participants:
            raise SimulationError(
                f"barrier {barrier_id}: inconsistent participant counts "
                f"({state.participants} vs {participants})"
            )
        state.arrived += 1
        state.waiters.append(on_release)
        self.barrier_waits += 1
        if state.arrived >= state.participants:
            self._barrier_generation[barrier_id] = generation + 1
            del self._barriers[key]
            for waiter in state.waiters:
                self.sim.after(self.WAKE_LATENCY, waiter, label=f"barrier{barrier_id}")

    # ------------------------------------------------------------------
    # Address watches (spin wake-ups)
    # ------------------------------------------------------------------
    def watch(
        self,
        word_addr: int,
        proc: int,
        predicate: Callable[[int], bool],
        callback: Callable[[], None],
    ) -> None:
        """Wake ``callback`` when a visible write to ``word_addr`` satisfies
        ``predicate(new_value)``."""
        self._watches.setdefault(word_addr, []).append(
            _Watch(proc, predicate, callback)
        )

    def notify_write(self, word_addr: int, new_value: int) -> None:
        """A model made a write to ``word_addr`` visible; wake matchers."""
        watches = self._watches.get(word_addr)
        if not watches:
            return
        remaining: List[_Watch] = []
        for watch in watches:
            if watch.predicate(new_value):
                self.watch_wakeups += 1
                self.sim.after(
                    self.WAKE_LATENCY, watch.callback, label=f"wake@{word_addr:#x}"
                )
            else:
                remaining.append(watch)
        if remaining:
            self._watches[word_addr] = remaining
        else:
            del self._watches[word_addr]

    def waiting_on(self, word_addr: int) -> int:
        return len(self._watches.get(word_addr, ()))

    def any_waiters(self) -> bool:
        return bool(self._watches) or bool(self._barriers)
