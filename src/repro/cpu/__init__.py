"""Processor-side substrate.

* :mod:`repro.cpu.isa` — the micro-op vocabulary thread programs are
  written in (loads, stores, compute bursts, locks, barriers, fences).
* :mod:`repro.cpu.thread` — architectural thread state: program, program
  counter, registers.
* :mod:`repro.cpu.checkpoint` — register/PC checkpoints used by BulkSC
  chunk rollback (and by SC++ conceptually).
* :mod:`repro.cpu.window` — the retirement-window timing model shared by
  every consistency model: decode-ahead fetch, in-order retirement, MSHR
  limited memory-level parallelism.
* :mod:`repro.cpu.sync` — cross-processor synchronization plumbing
  (barrier arrival counts, spin wake-ups).
* :mod:`repro.cpu.driver` — the abstract per-processor driver that each
  consistency model implements.
"""

from repro.cpu.checkpoint import Checkpoint
from repro.cpu.driver import DriverState, ProcessorDriver
from repro.cpu.isa import (
    Barrier,
    Compute,
    Fence,
    Load,
    LockAcquire,
    LockRelease,
    Op,
    OpKind,
    Reg,
    RegPlus,
    SpinUntil,
    Store,
)
from repro.cpu.sync import SyncManager
from repro.cpu.thread import ThreadContext, ThreadProgram
from repro.cpu.window import RetirementWindow

__all__ = [
    "Op",
    "OpKind",
    "Load",
    "Store",
    "Compute",
    "LockAcquire",
    "LockRelease",
    "Barrier",
    "Fence",
    "SpinUntil",
    "Reg",
    "RegPlus",
    "ThreadProgram",
    "ThreadContext",
    "Checkpoint",
    "RetirementWindow",
    "SyncManager",
    "ProcessorDriver",
    "DriverState",
]
