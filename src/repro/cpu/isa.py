"""The micro-op vocabulary for thread programs.

Thread programs are straight-line sequences of micro-ops (loops are
unrolled by the workload generators; spin loops are expressed with the
dedicated :class:`SpinUntil` / :class:`LockAcquire` ops so each
consistency model can implement waiting natively).

Value operands are either literal ints, :class:`Reg` (read a register),
or :class:`RegPlus` (register plus constant — enough to express the
read-modify-write idioms the workloads need, e.g. shared counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Union

from repro.errors import ProgramError


class OpKind(Enum):
    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    ACQUIRE = "acquire"
    RELEASE = "release"
    BARRIER = "barrier"
    FENCE = "fence"
    SPIN_UNTIL = "spin_until"
    IO = "io"


@dataclass(frozen=True)
class Reg:
    """Operand: current value of a register."""

    name: str


@dataclass(frozen=True)
class RegPlus:
    """Operand: register value plus a constant (for increments)."""

    name: str
    addend: int


Operand = Union[int, Reg, RegPlus]


def resolve_operand(operand: Operand, registers: Dict[str, int]) -> int:
    """Evaluate an operand against a register file."""
    if isinstance(operand, int):
        return operand
    if isinstance(operand, Reg):
        try:
            return registers[operand.name]
        except KeyError:
            raise ProgramError(f"read of unwritten register {operand.name!r}") from None
    if isinstance(operand, RegPlus):
        try:
            return registers[operand.name] + operand.addend
        except KeyError:
            raise ProgramError(f"read of unwritten register {operand.name!r}") from None
    raise ProgramError(f"unknown operand {operand!r}")


class Op:
    """Base class for micro-ops; concrete ops are the dataclasses below."""

    __slots__ = ()
    kind: OpKind

    @property
    def instruction_count(self) -> int:
        """Dynamic instructions this micro-op represents (chunk sizing)."""
        return 1

    @property
    def is_memory(self) -> bool:
        return False


@dataclass(frozen=True)
class Load(Op):
    """``reg <- MEM[addr]``."""

    reg: str
    addr: int
    kind = OpKind.LOAD

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Store(Op):
    """``MEM[addr] <- value``."""

    addr: int
    value: Operand
    kind = OpKind.STORE

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Compute(Op):
    """A burst of ``count`` non-memory instructions."""

    count: int
    kind = OpKind.COMPUTE

    @property
    def instruction_count(self) -> int:
        return self.count


@dataclass(frozen=True)
class LockAcquire(Op):
    """Test-and-set acquire of the lock word at ``addr``.

    Semantics: atomically observe 0 and write 1, else wait and retry.
    Counts as two instructions (the load and the conditional store).
    """

    addr: int
    kind = OpKind.ACQUIRE

    @property
    def is_memory(self) -> bool:
        return True

    @property
    def instruction_count(self) -> int:
        return 2


@dataclass(frozen=True)
class LockRelease(Op):
    """Store 0 to the lock word at ``addr`` (with release semantics)."""

    addr: int
    kind = OpKind.RELEASE

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Barrier(Op):
    """Arrive at barrier ``barrier_id`` and wait for ``participants``."""

    barrier_id: int
    participants: int
    kind = OpKind.BARRIER


@dataclass(frozen=True)
class Fence(Op):
    """A full memory fence (meaningful to RC; SC and BulkSC need none)."""

    kind = OpKind.FENCE


@dataclass(frozen=True)
class SpinUntil(Op):
    """Spin-read ``addr`` until it equals ``value`` (flag synchronization)."""

    addr: int
    value: int
    kind = OpKind.SPIN_UNTIL

    @property
    def is_memory(self) -> bool:
        return True


@dataclass(frozen=True)
class Io(Op):
    """An uncached I/O write to ``device`` (paper Section 4.1.3).

    I/O cannot execute speculatively: under BulkSC the processor stalls
    until the current chunk completes its commit, performs the operation
    non-speculatively, then starts a new chunk.
    """

    device: int
    value: Operand
    kind = OpKind.IO

    #: Cycles to complete the uncached device access.
    LATENCY = 200
