"""Register/PC checkpoints (paper: "checkpointed processors").

BulkSC creates a checkpoint at every chunk boundary; squashing a chunk
restores the checkpoint and discards all speculative state the chunk
produced.  A checkpoint is cheap — registers and PC only — because
speculative memory state lives in the chunk's write buffer and is simply
dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cpu.thread import ThreadContext


@dataclass(frozen=True)
class Checkpoint:
    """An immutable snapshot of architectural thread state."""

    proc: int
    pc: int
    registers: Dict[str, int]
    retired_instructions: int

    @classmethod
    def take(cls, thread: ThreadContext) -> "Checkpoint":
        return cls(
            proc=thread.proc,
            pc=thread.pc,
            registers=dict(thread.registers),
            retired_instructions=thread.retired_instructions,
        )

    def restore(self, thread: ThreadContext) -> None:
        if thread.proc != self.proc:
            raise ValueError(
                f"checkpoint for proc {self.proc} restored on proc {thread.proc}"
            )
        thread.pc = self.pc
        thread.registers = dict(self.registers)
        thread.retired_instructions = self.retired_instructions
        thread.finished = thread.pc >= len(thread.program)
