"""The abstract per-processor driver.

A driver walks one thread's program, asking its consistency model (the
concrete subclass) to execute each op.  The driver owns the event-loop
mechanics — batching, blocking, wake-ups — so the model subclasses only
implement op semantics.

Execution is batched: one simulator event executes ops until the
retirement cursor has advanced by ``batch_cycles`` (or the driver blocks
or finishes).  Batching keeps the Python event count tractable while
preserving cycle-approximate interleaving: cross-processor interactions
(commits, invalidations, squashes) are separate events that interleave
between batches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Optional, TYPE_CHECKING

from repro.cpu.isa import Op
from repro.cpu.thread import ThreadContext
from repro.cpu.window import RetirementWindow
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import Machine


class DriverState(Enum):
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class ProcessorDriver(ABC):
    """Walks one thread's program under a consistency model."""

    #: Cursor advance per event before yielding to the event loop.
    batch_cycles: float = 40.0

    def __init__(self, proc: int, thread: ThreadContext, machine: "Machine"):
        self.proc = proc
        self.thread = thread
        self.machine = machine
        self.sim = machine.sim
        self.window = RetirementWindow(
            machine.config.processor, machine.coherence.l1_mshrs[proc]
        )
        self.window.set_l1_round_trip(machine.config.memory.l1.round_trip_cycles)
        self.state = DriverState.RUNNING
        self.finish_time: Optional[float] = None
        self._step_scheduled = False

    # ------------------------------------------------------------------
    # Event-loop mechanics
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first execution batch."""
        self._schedule_step(0.0)

    def _schedule_step(self, at_time: float) -> None:
        if self._step_scheduled:
            return
        self._step_scheduled = True
        when = max(at_time, self.sim.now)
        self.sim.at(when, self._step, label=f"proc{self.proc}.step")

    def _step(self) -> None:
        self._step_scheduled = False
        if self.state is not DriverState.RUNNING:
            return
        self._run_until(self.window.now + self.batch_cycles)
        if self.state is DriverState.RUNNING:
            self._schedule_step(self.window.now)

    def _run_until(self, batch_end: float) -> None:
        """Execute ops until the cursor passes ``batch_end``, blocks, or ends.

        This is the scalar reference interpreter: one dispatch through
        :meth:`execute_op` per micro-op.  Models may override it with a
        batched implementation, provided the result is bit-identical
        (same stats, same traces, same blocking points).
        """
        while self.state is DriverState.RUNNING:
            op = self.thread.current_op()
            if op is None:
                self._finish()
                return
            proceed = self.execute_op(op)
            if not proceed:
                # The model blocked on this op; it will call
                # :meth:`wake_retry` or :meth:`wake_advance` later.
                self.state = DriverState.BLOCKED
                return
            self.thread.advance()
            if self.window.now >= batch_end:
                break

    def _finish(self) -> None:
        if self.state is DriverState.FINISHED:
            return
        if not self.on_program_end():
            # The model still has in-flight state to drain (e.g. BulkSC's
            # final chunk commit); it calls complete_finish() when done.
            self.state = DriverState.BLOCKED
            return
        self.complete_finish()

    def complete_finish(self) -> None:
        """Mark the driver finished; called once all model state drained."""
        if self.state is DriverState.FINISHED:
            return
        self.state = DriverState.FINISHED
        self.finish_time = max(self.window.now, self.sim.now)
        self.machine.driver_finished(self)

    # ------------------------------------------------------------------
    # Wake-ups (called by models / sync callbacks)
    # ------------------------------------------------------------------
    def wake_retry(self, resume_time: Optional[float] = None) -> None:
        """Unblock and *re-execute* the current op (spin retries)."""
        if self.state is DriverState.FINISHED:
            raise SimulationError(f"proc {self.proc}: wake after finish")
        self.state = DriverState.RUNNING
        when = resume_time if resume_time is not None else self.sim.now
        self.window.stall_until(when)
        self._schedule_step(when)

    def wake_advance(self, resume_time: Optional[float] = None) -> None:
        """Unblock, consume the current op, and continue (barrier release)."""
        if self.state is DriverState.FINISHED:
            raise SimulationError(f"proc {self.proc}: wake after finish")
        self.thread.advance()
        self.state = DriverState.RUNNING
        when = resume_time if resume_time is not None else self.sim.now
        self.window.stall_until(when)
        self._schedule_step(when)

    # ------------------------------------------------------------------
    # Model interface
    # ------------------------------------------------------------------
    @abstractmethod
    def execute_op(self, op: Op) -> bool:
        """Execute one op at the current retirement cursor.

        Returns True to consume the op and continue, False to block on it
        (the model must arrange a later wake-up).
        """

    def on_program_end(self) -> bool:
        """Hook: flush model state (store buffers, final chunk commit).

        Returns True when the driver may finish immediately; False when a
        drain is in flight and the model will call :meth:`complete_finish`.
        """
        return True

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.window.now
