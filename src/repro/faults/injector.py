"""Seeded fault injector for the chunk-commit pipeline.

The :class:`FaultInjector` sits between the protocol engines and the
simulator's scheduler.  Hardened code paths route every injectable
message leg through :meth:`FaultInjector.deliver` instead of calling
``sim.after`` directly; the injector then either passes the delivery
through untouched (the fault-free case is bit-identical to direct
scheduling) or perturbs it according to the :class:`~repro.faults.plan.FaultPlan`:
drop it, deliver it late, deliver it twice, or jitter its latency so
same-cycle messages cross.

Protocol-level faults that are not single messages — signature
false-positive storms and spurious squashes — are exposed as query
methods (:meth:`storm_procs`, :meth:`squash_victims`) that the commit
engine consults at the natural decision points.

Every injectable decision point is *numbered*: :meth:`deliver` bumps
``deliver_seq`` on every call (faulted or not), and the storm/squash
queries bump their own counters.  Injected faults record the sequence
number they fired at plus their drawn parameters, which makes a fault
schedule a pure data object: :class:`ScriptedFaultInjector` re-applies
an explicit ``{seq: fault}`` script with no randomness at all — the
mechanism behind trace minimization and minimized-trace replay in
:mod:`repro.replay`.

Every injected fault is appended to :attr:`trace` as a
:class:`FaultRecord`; resilience errors carry this trace so a failing
chaos run names exactly what was done to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.faults.plan import (
    MESSAGE_KINDS,
    FaultKind,
    FaultPlan,
    FaultPoint,
    FaultSpec,
)

#: Keep the fault trace bounded; counts are always exact.
_TRACE_CAP = 5000

#: Random (plan-driven) arbiter crashes per run are capped so a crash
#: storm cannot outpace recovery forever — the recovery watchdog turns a
#: genuinely unrecoverable run into a diagnosable RecoveryError instead.
_MAX_RANDOM_CRASHES = 5


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: when, what, and to which message.

    ``seq`` numbers the injection point within its channel (message
    deliveries, storm queries, or squash queries — see
    :attr:`channel`), and ``extra``/``victims`` hold the drawn
    parameters, so a recorded fault can be re-applied verbatim by a
    :class:`ScriptedFaultInjector`.
    """

    time: float
    fault: str
    point: Optional[str]
    label: str
    detail: str = ""
    #: Canonical fault kind (``drop``/``delay``/``dup``/``reorder``/
    #: ``storm``/``squash``) — ``fault`` may be an alias like
    #: ``kill-acks``.
    kind: str = ""
    #: Sequence number within the channel (-1 for legacy records).
    seq: int = -1
    #: Drawn latency parameter: extra delay (delay/dup) or the absolute
    #: perturbed delay (reorder).
    extra: float = 0.0
    #: Storm/squash victims.
    victims: Tuple[int, ...] = ()

    @property
    def channel(self) -> str:
        """Which counter ``seq`` indexes: deliver, storm, squash, or crash.

        Crash records number per-point occurrences (``seq`` is the Nth
        delivery at ``point``), not the global deliver counter.
        """
        if self.kind in ("storm", "squash", "crash"):
            return self.kind
        return "deliver"

    def render(self) -> str:
        where = f"@{self.point}" if self.point else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:>10.1f}] {self.fault}{where} on {self.label!r}{detail}"


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to message deliveries, deterministically.

    A ``(plan, seed, label)`` triple fully determines the fault schedule:
    the injector forks its own RNG sub-stream so consuming faults never
    perturbs workload generation or backoff jitter elsewhere.
    """

    plan: FaultPlan = field(default_factory=FaultPlan.none)
    seed: int = 0
    label: str = "machine"

    def __post_init__(self):
        self.rng = DeterministicRng(self.seed).fork(f"fault-injector/{self.label}")
        self.sim: Optional[Simulator] = None
        self.trace: List[FaultRecord] = []
        self.counts: Dict[str, int] = {}
        self._trace_overflow = 0
        #: Sequence counters, one per injection channel.  Bumped on every
        #: call — faulted or not — so two executions of the same workload
        #: number their injection points identically.
        self.deliver_seq = 0
        self.storm_seq = 0
        self.squash_seq = 0
        #: Callbacks invoked with every FaultRecord as it is created
        #: (before the trace cap applies); used by the replay recorder.
        self.observers: List[Callable[[FaultRecord], None]] = []
        self._message_specs: List[FaultSpec] = [
            s for s in self.plan.specs if s.kind in MESSAGE_KINDS
        ]
        self._storm_spec = self._find(FaultKind.STORM)
        self._squash_spec = self._find(FaultKind.SQUASH)
        self._crash_spec = self._find(FaultKind.CRASH)
        #: Per-point delivery counters — the crash channel's sequence
        #: space.  Counting per point (not globally) keeps scripted crash
        #: positions meaningful across config changes that shift message
        #: interleavings.
        self._point_occurrence: Dict[str, int] = {}
        #: Scripted crashes: ``{(point_value, occurrence): target}``.
        self.crash_script: Dict[Tuple[str, int], str] = {}
        #: Wired by the machine: called with a target name, returns True
        #: if the crash was actually applied.
        self.crash_handler: Optional[Callable[[str], bool]] = None
        #: Valid targets for plan-driven (random) crashes.
        self.crash_targets: List[str] = []
        self.crashes_fired = 0

    def _find(self, kind: FaultKind) -> Optional[FaultSpec]:
        for spec in self.plan.specs:
            if spec.kind is kind:
                return spec
        return None

    @property
    def active(self) -> bool:
        """True when any fault can ever fire (hardened watchdogs arm on this)."""
        return self.plan.active or bool(self.crash_script)

    def bind(self, sim: Simulator) -> None:
        self.sim = sim

    def add_observer(self, observer: Callable[[FaultRecord], None]) -> None:
        self.observers.append(observer)

    # ------------------------------------------------------------------
    # Message-leg injection
    # ------------------------------------------------------------------
    def deliver(
        self,
        point: FaultPoint,
        action: Callable[[], object],
        delay: float = 0.0,
        label: str = "",
    ) -> None:
        """Deliver a protocol message, possibly perturbed.

        Fault-free behaviour is identical to the un-instrumented code:
        ``delay <= 0`` invokes ``action`` synchronously, anything else is
        ``sim.after(delay, action, label=label)``.
        """
        self.deliver_seq += 1
        self._crash_check(point, label)
        sim = self.sim
        if sim is not None and self._message_specs:
            for spec in self._message_specs:
                if point not in spec.points or self.rng.random() >= spec.rate:
                    continue
                self._apply(spec, point, action, delay, label, sim)
                return
        self._pass_through(action, delay, label)

    def _pass_through(
        self, action: Callable[[], object], delay: float, label: str
    ) -> None:
        if delay > 0:
            assert self.sim is not None, "deliver() with delay needs a bound simulator"
            self.sim.after(delay, action, label=label)
        else:
            action()

    def _apply(
        self,
        spec: FaultSpec,
        point: FaultPoint,
        action: Callable[[], object],
        delay: float,
        label: str,
        sim: Simulator,
    ) -> None:
        seq = self.deliver_seq
        if spec.kind is FaultKind.DROP:
            self._record(
                spec.name, point, label, "message lost", kind="drop", seq=seq
            )
            return
        if spec.kind is FaultKind.DELAY:
            extra = self.rng.uniform(spec.min_delay, spec.max_delay)
            self._record(
                spec.name, point, label, f"+{extra:.0f}cy",
                kind="delay", seq=seq, extra=extra,
            )
            sim.after(delay + extra, action, label=label)
            return
        if spec.kind is FaultKind.DUP:
            extra = self.rng.uniform(spec.min_delay, spec.max_delay)
            self._record(
                spec.name, point, label, f"echo +{extra:.0f}cy",
                kind="dup", seq=seq, extra=extra,
            )
            sim.after(max(delay, 0.001), action, label=label)
            sim.after(delay + extra, action, label=f"{label}.dup")
            return
        if spec.kind is FaultKind.REORDER:
            jitter = self.rng.uniform(-spec.max_delay, spec.max_delay)
            new_delay = max(0.001, delay + jitter)
            self._record(
                spec.name, point, label, f"{delay:.0f}->{new_delay:.0f}cy",
                kind="reorder", seq=seq, extra=new_delay,
            )
            sim.after(new_delay, action, label=label)
            return
        raise AssertionError(f"unhandled message fault kind {spec.kind}")

    # ------------------------------------------------------------------
    # Arbiter crashes
    # ------------------------------------------------------------------
    def _crash_check(self, point: FaultPoint, label: str) -> None:
        """Fire a scripted or plan-driven arbiter crash at this delivery.

        Runs *before* the message itself is handled, so a grant delivery
        that coincides with its arbiter's crash sees the post-crash epoch
        and is rejected — there is no window for a dead-epoch grant to
        land.  Per-point occurrence counters key the crash channel.
        """
        occ = self._point_occurrence.get(point.value, 0) + 1
        self._point_occurrence[point.value] = occ
        target = self.crash_script.get((point.value, occ))
        if target is None:
            spec = self._crash_spec
            if (
                spec is None
                or self.sim is None
                or self.crashes_fired >= _MAX_RANDOM_CRASHES
                or point not in spec.points
                or not self.crash_targets
                or self.rng.random() >= spec.rate
            ):
                return
            target = self.rng.choice(self.crash_targets)
        if self.crash_handler is None or not self.crash_handler(target):
            return
        self.crashes_fired += 1
        # ``detail`` carries exactly the target name so the minimizer can
        # round-trip the record back into a crash script.
        self._record(
            "arbiter-crash", point, label, target, kind="crash", seq=occ
        )

    # ------------------------------------------------------------------
    # Protocol-level faults
    # ------------------------------------------------------------------
    def storm_procs(self, num_procs: int, committer: int) -> List[int]:
        """Victims of a signature false-positive storm, or ``[]``.

        When the storm fires, the directory behaves as though address
        aliasing made *every* other processor's signatures intersect the
        committer's W — the worst case Table 1 allows — so invalidations
        fan out system-wide and the ack path is stressed.
        """
        self.storm_seq += 1
        spec = self._storm_spec
        if spec is None or num_procs <= 1 or self.rng.random() >= spec.rate:
            return []
        victims = [p for p in range(num_procs) if p != committer]
        self._record(
            spec.name, None, f"commit by P{committer}",
            f"{len(victims)} false positives",
            kind="storm", seq=self.storm_seq, victims=tuple(victims),
        )
        return victims

    def squash_victims(self, num_procs: int, committer: int) -> List[int]:
        """Processors to spuriously squash at this commit, or ``[]``."""
        self.squash_seq += 1
        spec = self._squash_spec
        if spec is None or num_procs <= 1 or self.rng.random() >= spec.rate:
            return []
        victim = self.rng.choice([p for p in range(num_procs) if p != committer])
        self._record(
            spec.name, None, f"commit by P{committer}", f"squash P{victim}",
            kind="squash", seq=self.squash_seq, victims=(victim,),
        )
        return [victim]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record(
        self,
        fault: str,
        point: Optional[FaultPoint],
        label: str,
        detail: str,
        kind: str = "",
        seq: int = -1,
        extra: float = 0.0,
        victims: Tuple[int, ...] = (),
    ) -> None:
        self.counts[fault] = self.counts.get(fault, 0) + 1
        now = self.sim.now if self.sim is not None else 0.0
        record = FaultRecord(
            now, fault, point.value if point else None, label, detail,
            kind=kind or fault, seq=seq, extra=extra, victims=victims,
        )
        for observer in self.observers:
            observer(record)
        if len(self.trace) >= _TRACE_CAP:
            self._trace_overflow += 1
            return
        self.trace.append(record)

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> str:
        if not self.counts:
            return "no faults injected"
        parts = [f"{name}×{n}" for name, n in sorted(self.counts.items())]
        text = ", ".join(parts)
        if self._trace_overflow:
            text += f" ({self._trace_overflow} trace records elided)"
        return text


# ----------------------------------------------------------------------
# Scripted replay of explicit fault schedules
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScriptedFault:
    """One scripted perturbation: what to do at a numbered injection point."""

    kind: str  # drop | delay | dup | reorder
    extra: float = 0.0


class ScriptedFaultInjector(FaultInjector):
    """Replays an explicit ``{seq: fault}`` script instead of drawing.

    The script is keyed by the channel sequence counters of
    :class:`FaultInjector` (``deliver_seq``, ``storm_seq``,
    ``squash_seq``), so a schedule extracted from a recorded run's
    :class:`FaultRecord` trace re-applies the *same* faults to the
    *same* protocol messages.  Subsets of a schedule are what the
    delta-debugging minimizer in :mod:`repro.replay.minimizer` searches
    over, and the surviving minimal script ships inside the minimized
    trace so ``replay run`` can re-drive it.

    No randomness is consumed: two runs under the same script are
    bit-identical.
    """

    def __init__(
        self,
        deliver_script: Optional[Dict[int, ScriptedFault]] = None,
        storm_script: Optional[Dict[int, Tuple[int, ...]]] = None,
        squash_script: Optional[Dict[int, Tuple[int, ...]]] = None,
        label: str = "scripted",
        crash_script: Optional[Dict[Tuple[str, int], str]] = None,
    ):
        super().__init__(FaultPlan.none(), seed=0, label=label)
        self.deliver_script = dict(deliver_script or {})
        self.storm_script = {k: tuple(v) for k, v in (storm_script or {}).items()}
        self.squash_script = {k: tuple(v) for k, v in (squash_script or {}).items()}
        self.crash_script = dict(crash_script or {})

    @property
    def active(self) -> bool:
        # Watchdogs must arm exactly as they did in the recorded run:
        # a scripted injector is always "active" even with an empty
        # script, because the run it minimizes had an active injector.
        return True

    def script_size(self) -> int:
        return (
            len(self.deliver_script)
            + len(self.storm_script)
            + len(self.squash_script)
            + len(self.crash_script)
        )

    # ------------------------------------------------------------------
    def deliver(
        self,
        point: FaultPoint,
        action: Callable[[], object],
        delay: float = 0.0,
        label: str = "",
    ) -> None:
        self.deliver_seq += 1
        self._crash_check(point, label)
        seq = self.deliver_seq
        fault = self.deliver_script.get(seq)
        sim = self.sim
        if fault is None or sim is None:
            self._pass_through(action, delay, label)
            return
        if fault.kind == "drop":
            self._record(
                "drop", point, label, "message lost (scripted)",
                kind="drop", seq=seq,
            )
            return
        if fault.kind == "delay":
            self._record(
                "delay", point, label, f"+{fault.extra:.0f}cy (scripted)",
                kind="delay", seq=seq, extra=fault.extra,
            )
            sim.after(delay + fault.extra, action, label=label)
            return
        if fault.kind == "dup":
            self._record(
                "dup", point, label, f"echo +{fault.extra:.0f}cy (scripted)",
                kind="dup", seq=seq, extra=fault.extra,
            )
            sim.after(max(delay, 0.001), action, label=label)
            sim.after(delay + fault.extra, action, label=f"{label}.dup")
            return
        if fault.kind == "reorder":
            self._record(
                "reorder", point, label,
                f"{delay:.0f}->{fault.extra:.0f}cy (scripted)",
                kind="reorder", seq=seq, extra=fault.extra,
            )
            sim.after(max(0.001, fault.extra), action, label=label)
            return
        raise AssertionError(f"unhandled scripted fault kind {fault.kind!r}")

    def storm_procs(self, num_procs: int, committer: int) -> List[int]:
        self.storm_seq += 1
        victims = self.storm_script.get(self.storm_seq)
        if not victims:
            return []
        victims = tuple(p for p in victims if p != committer and p < num_procs)
        if victims:
            self._record(
                "storm", None, f"commit by P{committer}",
                f"{len(victims)} false positives (scripted)",
                kind="storm", seq=self.storm_seq, victims=victims,
            )
        return list(victims)

    def squash_victims(self, num_procs: int, committer: int) -> List[int]:
        self.squash_seq += 1
        victims = self.squash_script.get(self.squash_seq)
        if not victims:
            return []
        victims = tuple(p for p in victims if p != committer and p < num_procs)
        if victims:
            self._record(
                "squash", None, f"commit by P{committer}",
                f"squash {','.join(f'P{v}' for v in victims)} (scripted)",
                kind="squash", seq=self.squash_seq, victims=victims,
            )
        return list(victims)
