"""Seeded fault injector for the chunk-commit pipeline.

The :class:`FaultInjector` sits between the protocol engines and the
simulator's scheduler.  Hardened code paths route every injectable
message leg through :meth:`FaultInjector.deliver` instead of calling
``sim.after`` directly; the injector then either passes the delivery
through untouched (the fault-free case is bit-identical to direct
scheduling) or perturbs it according to the :class:`~repro.faults.plan.FaultPlan`:
drop it, deliver it late, deliver it twice, or jitter its latency so
same-cycle messages cross.

Protocol-level faults that are not single messages — signature
false-positive storms and spurious squashes — are exposed as query
methods (:meth:`storm_procs`, :meth:`squash_victims`) that the commit
engine consults at the natural decision points.

Every injected fault is appended to :attr:`trace` as a
:class:`FaultRecord`; resilience errors carry this trace so a failing
chaos run names exactly what was done to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.engine.rng import DeterministicRng
from repro.engine.simulator import Simulator
from repro.faults.plan import (
    MESSAGE_KINDS,
    FaultKind,
    FaultPlan,
    FaultPoint,
    FaultSpec,
)

#: Keep the fault trace bounded; counts are always exact.
_TRACE_CAP = 5000


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: when, what, and to which message."""

    time: float
    fault: str
    point: Optional[str]
    label: str
    detail: str = ""

    def render(self) -> str:
        where = f"@{self.point}" if self.point else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:>10.1f}] {self.fault}{where} on {self.label!r}{detail}"


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to message deliveries, deterministically.

    A ``(plan, seed, label)`` triple fully determines the fault schedule:
    the injector forks its own RNG sub-stream so consuming faults never
    perturbs workload generation or backoff jitter elsewhere.
    """

    plan: FaultPlan = field(default_factory=FaultPlan.none)
    seed: int = 0
    label: str = "machine"

    def __post_init__(self):
        self.rng = DeterministicRng(self.seed).fork(f"fault-injector/{self.label}")
        self.sim: Optional[Simulator] = None
        self.trace: List[FaultRecord] = []
        self.counts: Dict[str, int] = {}
        self._trace_overflow = 0
        self._message_specs: List[FaultSpec] = [
            s for s in self.plan.specs if s.kind in MESSAGE_KINDS
        ]
        self._storm_spec = self._find(FaultKind.STORM)
        self._squash_spec = self._find(FaultKind.SQUASH)

    def _find(self, kind: FaultKind) -> Optional[FaultSpec]:
        for spec in self.plan.specs:
            if spec.kind is kind:
                return spec
        return None

    @property
    def active(self) -> bool:
        """True when any fault can ever fire (hardened watchdogs arm on this)."""
        return self.plan.active

    def bind(self, sim: Simulator) -> None:
        self.sim = sim

    # ------------------------------------------------------------------
    # Message-leg injection
    # ------------------------------------------------------------------
    def deliver(
        self,
        point: FaultPoint,
        action: Callable[[], object],
        delay: float = 0.0,
        label: str = "",
    ) -> None:
        """Deliver a protocol message, possibly perturbed.

        Fault-free behaviour is identical to the un-instrumented code:
        ``delay <= 0`` invokes ``action`` synchronously, anything else is
        ``sim.after(delay, action, label=label)``.
        """
        sim = self.sim
        if sim is not None and self._message_specs:
            for spec in self._message_specs:
                if point not in spec.points or self.rng.random() >= spec.rate:
                    continue
                self._apply(spec, point, action, delay, label, sim)
                return
        if delay > 0:
            assert sim is not None, "deliver() with delay needs a bound simulator"
            sim.after(delay, action, label=label)
        else:
            action()

    def _apply(
        self,
        spec: FaultSpec,
        point: FaultPoint,
        action: Callable[[], object],
        delay: float,
        label: str,
        sim: Simulator,
    ) -> None:
        if spec.kind is FaultKind.DROP:
            self._record(spec.name, point, label, "message lost")
            return
        if spec.kind is FaultKind.DELAY:
            extra = self.rng.uniform(spec.min_delay, spec.max_delay)
            self._record(spec.name, point, label, f"+{extra:.0f}cy")
            sim.after(delay + extra, action, label=label)
            return
        if spec.kind is FaultKind.DUP:
            extra = self.rng.uniform(spec.min_delay, spec.max_delay)
            self._record(spec.name, point, label, f"echo +{extra:.0f}cy")
            sim.after(max(delay, 0.001), action, label=label)
            sim.after(delay + extra, action, label=f"{label}.dup")
            return
        if spec.kind is FaultKind.REORDER:
            jitter = self.rng.uniform(-spec.max_delay, spec.max_delay)
            new_delay = max(0.001, delay + jitter)
            self._record(spec.name, point, label, f"{delay:.0f}->{new_delay:.0f}cy")
            sim.after(new_delay, action, label=label)
            return
        raise AssertionError(f"unhandled message fault kind {spec.kind}")

    # ------------------------------------------------------------------
    # Protocol-level faults
    # ------------------------------------------------------------------
    def storm_procs(self, num_procs: int, committer: int) -> List[int]:
        """Victims of a signature false-positive storm, or ``[]``.

        When the storm fires, the directory behaves as though address
        aliasing made *every* other processor's signatures intersect the
        committer's W — the worst case Table 1 allows — so invalidations
        fan out system-wide and the ack path is stressed.
        """
        spec = self._storm_spec
        if spec is None or num_procs <= 1 or self.rng.random() >= spec.rate:
            return []
        victims = [p for p in range(num_procs) if p != committer]
        self._record(
            spec.name, None, f"commit by P{committer}", f"{len(victims)} false positives"
        )
        return victims

    def squash_victims(self, num_procs: int, committer: int) -> List[int]:
        """Processors to spuriously squash at this commit, or ``[]``."""
        spec = self._squash_spec
        if spec is None or num_procs <= 1 or self.rng.random() >= spec.rate:
            return []
        victim = self.rng.choice([p for p in range(num_procs) if p != committer])
        self._record(spec.name, None, f"commit by P{committer}", f"squash P{victim}")
        return [victim]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record(
        self, fault: str, point: Optional[FaultPoint], label: str, detail: str
    ) -> None:
        self.counts[fault] = self.counts.get(fault, 0) + 1
        if len(self.trace) >= _TRACE_CAP:
            self._trace_overflow += 1
            return
        now = self.sim.now if self.sim is not None else 0.0
        self.trace.append(
            FaultRecord(now, fault, point.value if point else None, label, detail)
        )

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> str:
        if not self.counts:
            return "no faults injected"
        parts = [f"{name}×{n}" for name, n in sorted(self.counts.items())]
        text = ", ".join(parts)
        if self._trace_overflow:
            text += f" ({self._trace_overflow} trace records elided)"
        return text
