"""Fault plans: *what* to inject, *where*, and *how often*.

A :class:`FaultPlan` is a declarative, immutable description of an
adversarial environment for the chunk-commit pipeline: which protocol
message legs (:class:`FaultPoint`) are subject to which perturbations
(:class:`FaultKind`) at what rate.  Plans are pure data — the seeded
randomness lives in :class:`~repro.faults.injector.FaultInjector` — so a
``(plan, seed)`` pair fully determines every injected fault.

Plans are usually built from the CLI spelling, a comma-separated list of
fault names::

    FaultPlan.parse("drop,delay,dup")
    FaultPlan.parse("kill-acks")          # drop *every* ack message
    FaultPlan.parse("storm,squash", rate=0.1)

Named faults and their defaults:

=============  ============================================================
``drop``       lose a protocol message (request/grant/invalidation/ack)
``delay``      deliver a message late (uniform extra latency)
``dup``        deliver a message twice (tests idempotent handling)
``reorder``    jitter delivery so same-cycle messages cross
``storm``      signature false-positive storm: the directory forwards W to
               processors that share nothing with the committer
``squash``     spurious squash: a random processor's chunks are squashed
               as though aliasing had hit
``kill-acks``  drop *all* acknowledgement messages (rate 1.0) — with
               retries disabled this must fail diagnosably
``arbiter-crash``  crash-stop an arbiter incarnation mid-commit: its
               in-flight W-list dies and the epoch/lease recovery
               protocol must restore service (see
               :mod:`repro.core.recovery`)
=============  ============================================================

Crashes can also be *scripted* precisely with :class:`CrashPoint`: kill a
named target at the Nth occurrence of a pipeline phase, e.g.
``grant:3:arbiter0`` = crash ``arbiter0`` at the third grant delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigError


class FaultPoint(Enum):
    """A protocol message leg where faults can be injected."""

    COMMIT_REQUEST = "commit-request"  # permission-to-commit -> arbiter decision
    GRANT = "grant"  # arbiter's grant reply -> processor
    INVALIDATION = "invalidation"  # committed W signature -> victim processor
    ACK = "ack"  # invalidation acknowledgements -> arbiter release


class FaultKind(Enum):
    """The perturbation applied to a matched message (or protocol step)."""

    DROP = "drop"
    DELAY = "delay"
    DUP = "dup"
    REORDER = "reorder"
    STORM = "storm"  # invalidation-list false-positive storm
    SQUASH = "squash"  # spurious squash of a random processor
    CRASH = "crash"  # crash-stop an arbiter incarnation
    #: Wire-level only: a leg blackholes *all* traffic for a window.  Not
    #: a per-message kind — the in-simulator injector never draws it; the
    #: service fault proxy (:mod:`repro.service.faultproxy`) interprets it
    #: against wall-clock windows on live sockets.
    PARTITION = "partition"


#: Kinds that act on individual message deliveries.
MESSAGE_KINDS = frozenset(
    {FaultKind.DROP, FaultKind.DELAY, FaultKind.DUP, FaultKind.REORDER}
)

ALL_POINTS: FrozenSet[FaultPoint] = frozenset(FaultPoint)


@dataclass(frozen=True)
class FaultSpec:
    """One fault family within a plan."""

    kind: FaultKind
    #: Display name — usually the kind's value, but aliases like
    #: ``kill-acks`` keep their spelling so errors name the right fault.
    name: str
    points: FrozenSet[FaultPoint]
    rate: float
    #: Extra-latency bounds for DELAY/DUP/REORDER, in cycles.
    min_delay: float = 20.0
    max_delay: float = 400.0

    def validate(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ConfigError(
                f"fault delays must satisfy 0 <= min <= max, got "
                f"[{self.min_delay}, {self.max_delay}]"
            )
        if self.kind in MESSAGE_KINDS and not self.points:
            raise ConfigError(f"message fault {self.name!r} needs at least one point")


def _default_specs() -> dict:
    return {
        "drop": FaultSpec(FaultKind.DROP, "drop", ALL_POINTS, rate=0.04),
        "delay": FaultSpec(
            FaultKind.DELAY, "delay", ALL_POINTS, rate=0.15, min_delay=20, max_delay=400
        ),
        "dup": FaultSpec(
            FaultKind.DUP, "dup", ALL_POINTS, rate=0.05, min_delay=1, max_delay=120
        ),
        "reorder": FaultSpec(
            FaultKind.REORDER, "reorder", ALL_POINTS, rate=0.10, min_delay=0, max_delay=80
        ),
        "storm": FaultSpec(FaultKind.STORM, "storm", frozenset(), rate=0.05),
        "squash": FaultSpec(FaultKind.SQUASH, "squash", frozenset(), rate=0.03),
        "kill-acks": FaultSpec(
            FaultKind.DROP, "kill-acks", frozenset({FaultPoint.ACK}), rate=1.0
        ),
        "arbiter-crash": FaultSpec(
            FaultKind.CRASH, "arbiter-crash", ALL_POINTS, rate=0.002
        ),
    }


#: The fault names accepted by :meth:`FaultPlan.parse` (CLI ``--faults``).
KNOWN_FAULTS: Tuple[str, ...] = tuple(_default_specs())


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs, applied independently per message."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injection disabled, zero overhead."""
        return cls(())

    @classmethod
    def parse(cls, spelling: str, rate: Optional[float] = None) -> "FaultPlan":
        """Build a plan from a comma-separated fault list.

        Args:
            spelling: e.g. ``"drop,delay,dup"`` (see :data:`KNOWN_FAULTS`).
            rate: Optional override applied to every spec (``kill-acks``
                keeps its rate of 1.0 — it is a total-loss scenario by
                definition).
        """
        defaults = _default_specs()
        specs = []
        seen = set()
        for raw in spelling.split(","):
            name = raw.strip().lower()
            if not name:
                continue
            if name not in defaults:
                raise ConfigError(
                    f"unknown fault {name!r}; known faults: {', '.join(KNOWN_FAULTS)}"
                )
            if name in seen:
                continue
            seen.add(name)
            spec = defaults[name]
            if rate is not None and name != "kill-acks":
                spec = replace(spec, rate=rate)
            specs.append(spec)
        plan = cls(tuple(specs))
        plan.validate()
        return plan

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    @property
    def active(self) -> bool:
        return bool(self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        return ", ".join(f"{s.name}@{s.rate:g}" for s in self.specs)


# ----------------------------------------------------------------------
# Scripted arbiter crashes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CrashPoint:
    """A scripted arbiter crash: *which* target dies *when*.

    ``occurrence`` counts deliveries of ``point`` (1-based), so
    ``CrashPoint(FaultPoint.GRANT, 3, "arbiter0")`` kills ``arbiter0``
    the instant the third grant message is about to be delivered — the
    crash fires *before* the message, modeling the arbiter dying with
    the reply still in its output queue.  Targets name range arbiters
    (``arbiter0`` … ``arbiterN``) or the distributed front end's W cache
    (``global``).
    """

    point: FaultPoint
    occurrence: int
    target: str = "arbiter0"

    @classmethod
    def parse(cls, spelling: str) -> "CrashPoint":
        """Parse the CLI spelling ``POINT:OCCURRENCE[:TARGET]``."""
        parts = spelling.strip().split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"crash spec {spelling!r} must be POINT:OCCURRENCE[:TARGET]"
            )
        valid = {p.value: p for p in FaultPoint}
        name = parts[0].strip().lower()
        if name not in valid:
            raise ConfigError(
                f"unknown crash point {name!r}; valid points: "
                f"{', '.join(sorted(valid))}"
            )
        try:
            occurrence = int(parts[1])
        except ValueError:
            raise ConfigError(
                f"crash occurrence must be an integer, got {parts[1]!r}"
            ) from None
        if occurrence < 1:
            raise ConfigError(f"crash occurrence must be >= 1, got {occurrence}")
        target = parts[2].strip() if len(parts) == 3 else "arbiter0"
        if not target:
            raise ConfigError(f"crash spec {spelling!r} has an empty target")
        return cls(valid[name], occurrence, target)

    def canonical(self) -> str:
        """The round-trippable spelling (stored in trace headers)."""
        return f"{self.point.value}:{self.occurrence}:{self.target}"


def crash_script_from(specs) -> dict:
    """Build the injector's crash script from ``CrashPoint``s or spellings.

    Returns ``{(point_value, occurrence): target}``; later duplicates of
    the same (point, occurrence) key win, matching CLI append semantics.
    """
    script = {}
    for spec in specs:
        cp = spec if isinstance(spec, CrashPoint) else CrashPoint.parse(spec)
        script[(cp.point.value, cp.occurrence)] = cp.target
    return script
