"""Chaos campaigns: randomized fault schedules + the SC oracle.

A campaign runs a batch of workloads — the litmus suite and/or the
synthetic applications — under a seeded :class:`~repro.faults.plan.FaultPlan`
and checks, for every run, that

* the recorded execution history is still certified by
  :func:`repro.verify.sc_checker.check_sequential_consistency`, and
* no litmus test observed an SC-forbidden register outcome.

A run that cannot complete must fail *diagnosably*: the hardened commit
pipeline raises a typed :class:`~repro.errors.ReproError`
(:class:`~repro.errors.CommitTimeoutError`,
:class:`~repro.errors.FaultInducedError`,
:class:`~repro.errors.StarvationError`, ...) carrying the injected-fault
trace, which the campaign records verbatim.  An *untyped* exception or a
silent wrong answer is a bug in the simulator, not a fault outcome.

Everything is deterministic per ``(seed, plan, workload)``: each run gets
its own injector forked from the campaign seed and a per-run label.

This module imports :mod:`repro.system`, so it must not be re-exported
from ``repro.faults.__init__`` (the system module itself imports the
injector).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.isa import Compute
from repro.cpu.thread import ThreadProgram
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import CrashPoint, FaultPlan, crash_script_from
from repro.harness.parallel import parallel_map
from repro.harness.runner import ALL_APPS, build_app_workload
from repro.memory.address import AddressMap, AddressSpace
from repro.params import NAMED_CONFIGS
from repro.replay.workload import app_spec, litmus_spec
from repro.system import run_workload
from repro.verify.litmus import all_litmus_tests
from repro.verify.sc_checker import check_sequential_consistency

#: Event budget per chaos run — small enough to abort a genuine livelock
#: quickly, large enough that backoff/retry storms still converge.
CHAOS_MAX_EVENTS = 2_000_000

_STAGGERS = [(1, 1), (1, 60), (60, 1), (200, 7)]
_QUICK_STAGGERS = [(1, 1), (60, 1)]


@dataclass
class ChaosRunRecord:
    """Outcome of one workload under one fault schedule."""

    name: str
    seed: int
    cycles: float = 0.0
    faults_injected: int = 0
    fault_summary: str = ""
    sc_certified: bool = False
    sc_reason: str = ""
    forbidden_outcome: bool = False
    #: Arbiter crashes applied during this run and the mean crash-to-
    #: recovered latency (cycles) across them.
    crashes: int = 0
    recovery_cycles: float = 0.0
    #: ``"TypeName: message"`` when the run raised a typed ReproError.
    error: Optional[str] = None
    #: Reconstruction data for the replay recorder: workload spec,
    #: injector label, and the config seed this run used.  Pure data, so
    #: a failing run can be re-driven with a recorder attached
    #: (:func:`repro.replay.recorder.save_chaos_failure`).
    repro: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.sc_certified and not self.forbidden_outcome


@dataclass
class ChaosReport:
    """Results of a whole chaos campaign."""

    seed: int
    workload: str
    config_name: str
    plan_description: str
    retries_enabled: bool
    runs: List[ChaosRunRecord] = field(default_factory=list)
    #: Fault trace of the failing run (for diagnosis), if any.
    failure_trace: List[FaultRecord] = field(default_factory=list)
    #: The CLI fault spelling and rate override, kept so failing runs
    #: can be re-recorded as replayable traces.
    faults_spelling: str = ""
    rate: Optional[float] = None
    #: Scripted arbiter-crash specs (canonical spelling), if any.
    crashes_spelling: Tuple[str, ...] = ()

    @property
    def total_crashes(self) -> int:
        return sum(r.crashes for r in self.runs)

    @property
    def total_faults(self) -> int:
        return sum(r.faults_injected for r in self.runs)

    @property
    def certified(self) -> int:
        return sum(1 for r in self.runs if r.ok)

    @property
    def first_error(self) -> Optional[str]:
        for run in self.runs:
            if run.error is not None:
                return run.error
        return None

    @property
    def sc_violations(self) -> List[ChaosRunRecord]:
        return [
            r
            for r in self.runs
            if r.error is None and (not r.sc_certified or r.forbidden_outcome)
        ]

    @property
    def all_certified(self) -> bool:
        return bool(self.runs) and all(r.ok for r in self.runs)


def chaos_campaign_spec(
    seed: int,
    faults: str,
    workload: str = "litmus",
    config_name: str = "BSCdypvt",
    rate: Optional[float] = None,
    no_retry: bool = False,
    instructions: int = 2000,
    quick: bool = False,
    crashes: Sequence[str] = (),
):
    """Map a ``chaos`` CLI invocation onto a durable campaign spec.

    This is the campaign-mode entry of the chaos harness: the same
    (workload x seed x stagger) grid an in-memory :func:`run_chaos`
    campaign sweeps, expressed as a
    :class:`~repro.campaign.spec.CampaignSpec` so it can run
    checkpointed, sharded, and resumable through
    :func:`repro.campaign.runner.run_campaign` (``chaos --campaign
    DIR``).  Cell outcomes use the campaign determinism scheme (the
    injector is seeded per cell), so a durable chaos campaign is
    reproducible cell-by-cell rather than report-by-report.
    """
    from repro.campaign.spec import CampaignSpec, FaultVariant

    if workload not in ("litmus", "synthetic", "mix"):
        raise ValueError(f"unknown chaos workload {workload!r}")
    FaultPlan.parse(faults, rate=rate)  # validate the spelling up front
    workloads: List[dict] = []
    if workload in ("litmus", "mix"):
        staggers = _QUICK_STAGGERS if quick else _STAGGERS
        workloads.extend(
            {"kind": "litmus", "test": test.name, "stagger": list(stagger)}
            for test in all_litmus_tests()
            for stagger in staggers
        )
    if workload in ("synthetic", "mix"):
        workloads.extend(
            {"kind": "app", "app": app}
            for app in (ALL_APPS[:1] if quick else ALL_APPS[:3])
        )
    variant = FaultVariant(
        faults=faults,
        rate=rate,
        no_retry=no_retry,
        crashes=tuple(CrashPoint.parse(c).canonical() for c in crashes),
    )
    return CampaignSpec(
        name=f"chaos-{workload}-s{seed}",
        configs=(config_name,),
        workloads=tuple(workloads),
        seeds=(seed,) if quick else (seed, seed + 1),
        faults=(variant,),
        instructions=instructions,
        max_events=CHAOS_MAX_EVENTS,
    ).validate()


def run_chaos(
    seed: int,
    faults: str,
    workload: str = "litmus",
    config_name: str = "BSCdypvt",
    rate: Optional[float] = None,
    no_retry: bool = False,
    instructions: int = 2000,
    quick: bool = False,
    crashes: Sequence[str] = (),
    jobs: int = 1,
) -> ChaosReport:
    """Run a chaos campaign and return its report.

    Args:
        seed: Campaign seed; all fault schedules and workloads derive
            from it, so reports are bit-identical across repeats.
        faults: Comma-separated fault list for :meth:`FaultPlan.parse`.
        workload: ``litmus``, ``synthetic``, or ``mix``.
        config_name: A named configuration (must be a BulkSC variant for
            the commit pipeline to be exercised).
        rate: Optional per-message fault rate override.
        no_retry: Disable the bounded-retry resilience so the first lost
            message raises :class:`~repro.errors.FaultInducedError`.
        instructions: Per-thread instruction budget for synthetic apps.
        quick: Trim the campaign for smoke tests (CI).
        crashes: Scripted arbiter crashes (``POINT:OCC[:TARGET]``
            spellings), applied to *every* run of the campaign.
        jobs: Worker processes for the campaign's independent runs.
            Each run has its own injector forked from the campaign seed,
            so fan-out cannot change any run's schedule; the merged
            report is truncated at the first error in campaign order,
            making it bit-identical to a serial (stop-at-first-error)
            campaign.
    """
    if workload not in ("litmus", "synthetic", "mix"):
        raise ValueError(f"unknown chaos workload {workload!r}")
    plan = FaultPlan.parse(faults, rate=rate)
    crash_points = [CrashPoint.parse(s) for s in crashes]
    crash_script = crash_script_from(crash_points)
    report = ChaosReport(
        seed=seed,
        workload=workload,
        config_name=config_name,
        plan_description=plan.describe(),
        retries_enabled=not no_retry,
        faults_spelling=faults,
        rate=rate,
        crashes_spelling=tuple(cp.canonical() for cp in crash_points),
    )
    if workload in ("litmus", "mix"):
        if not _litmus_campaign(
            report, plan, seed, config_name, no_retry, quick, crash_script, jobs
        ):
            return report
    if workload in ("synthetic", "mix"):
        _synthetic_campaign(
            report, plan, seed, config_name, no_retry, instructions, quick,
            crash_script, jobs,
        )
    return report


def _config_for(config_name: str, seed: int, no_retry: bool):
    config = NAMED_CONFIGS[config_name](seed=seed)
    if no_retry:
        config = config.with_resilience(retries_enabled=False)
    return config


def _execute(
    record: ChaosRunRecord,
    config,
    programs,
    space,
    injector: FaultInjector,
) -> Tuple[Optional["object"], List[FaultRecord]]:
    """Run one workload, filling ``record`` in place.

    Returns ``(result, failure_trace)``: the
    :class:`~repro.system.RunResult` on completion, or ``None`` plus the
    injected-fault trace when the run raised a typed :class:`ReproError`
    — which stops the campaign so the trace stays front and center.
    """
    try:
        result = run_workload(
            config,
            programs,
            space,
            record_history=True,
            fault_injector=injector,
            max_events=CHAOS_MAX_EVENTS,
        )
    except ReproError as exc:
        record.error = f"{type(exc).__name__}: {exc}"
        record.faults_injected = injector.total_injected
        record.fault_summary = injector.summary()
        return None, list(getattr(exc, "fault_trace", ()) or injector.trace)
    record.cycles = result.cycles
    record.faults_injected = injector.total_injected
    record.fault_summary = injector.summary()
    record.crashes = int(result.stat("recovery.crashes"))
    record.recovery_cycles = result.stat("recovery.total_cycles.mean")
    check = check_sequential_consistency(result.history)
    record.sc_certified = check.ok
    record.sc_reason = check.reason
    return result, []


def _merge_outcomes(
    report: ChaosReport,
    outcomes: Sequence[Tuple[ChaosRunRecord, List[FaultRecord]]],
) -> bool:
    """Append run records in campaign order, stopping at the first error.

    This is what makes a fanned-out campaign report bit-identical to a
    serial one: workers complete out of order, but records merge in the
    canonical cell order and the report is truncated exactly where a
    serial campaign would have stopped.
    """
    for record, trace in outcomes:
        report.runs.append(record)
        if record.error is not None:
            report.failure_trace = trace
            return False
    return True


def _campaign_outcomes(run_cell, cells, jobs: int):
    """Run campaign cells, serially with early stop or fanned out.

    Serial campaigns stop at the first error without running later
    cells; parallel campaigns run everything and rely on
    :func:`_merge_outcomes` to truncate identically.
    """
    if jobs == 1:
        outcomes = []
        for cell in cells:
            outcome = run_cell(cell)
            outcomes.append(outcome)
            if outcome[0].error is not None:
                break
        return outcomes
    return parallel_map(run_cell, cells, jobs=jobs)


def _litmus_campaign(
    report: ChaosReport,
    plan: FaultPlan,
    seed: int,
    config_name: str,
    no_retry: bool,
    quick: bool,
    crash_script: Optional[Dict] = None,
    jobs: int = 1,
) -> bool:
    tests = all_litmus_tests()
    seeds = [seed] if quick else [seed, seed + 1]
    staggers = _QUICK_STAGGERS if quick else _STAGGERS
    cells = [
        (test, run_seed, gi, stagger)
        for test in tests
        for run_seed in seeds
        for gi, stagger in enumerate(staggers)
    ]

    def run_cell(cell) -> Tuple[ChaosRunRecord, List[FaultRecord]]:
        test, run_seed, gi, stagger = cell
        config = _config_for(config_name, run_seed, no_retry)
        space = AddressSpace(
            AddressMap(config.memory.words_per_line, config.num_directories)
        )
        addrs = {
            var: space.allocate(var, config.memory.words_per_line).start_word
            for var in test.variables
        }
        programs = [
            ThreadProgram([Compute(stagger[i % len(stagger)])] + ops, name=f"t{i}")
            for i, ops in enumerate(test.build(addrs))
        ]
        label = f"litmus/{test.name}/s{run_seed}/g{gi}"
        injector = FaultInjector(plan, seed=seed, label=label)
        if crash_script:
            injector.crash_script = dict(crash_script)
        record = ChaosRunRecord(
            name=f"litmus:{test.name}/s{run_seed}/g{gi}",
            seed=run_seed,
            repro={
                "workload": litmus_spec(test.name, stagger),
                "injector_label": label,
                "config_seed": run_seed,
            },
        )
        result, trace = _execute(record, config, programs, space, injector)
        if result is not None:
            record.forbidden_outcome = bool(test.forbidden(result.registers))
        return record, trace

    return _merge_outcomes(report, _campaign_outcomes(run_cell, cells, jobs))


def _synthetic_campaign(
    report: ChaosReport,
    plan: FaultPlan,
    seed: int,
    config_name: str,
    no_retry: bool,
    instructions: int,
    quick: bool,
    crash_script: Optional[Dict] = None,
    jobs: int = 1,
) -> bool:
    apps = ALL_APPS[:1] if quick else ALL_APPS[:3]

    def run_cell(app) -> Tuple[ChaosRunRecord, List[FaultRecord]]:
        config = _config_for(config_name, seed, no_retry)
        workload = build_app_workload(app, config, instructions, seed)
        label = f"synthetic/{app}"
        injector = FaultInjector(plan, seed=seed, label=label)
        if crash_script:
            injector.crash_script = dict(crash_script)
        record = ChaosRunRecord(
            name=f"synthetic:{app}",
            seed=seed,
            repro={
                "workload": app_spec(app, instructions, seed),
                "injector_label": label,
                "config_seed": seed,
            },
        )
        __, trace = _execute(
            record, config, workload.programs, workload.address_space, injector
        )
        return record, trace

    return _merge_outcomes(report, _campaign_outcomes(run_cell, list(apps), jobs))
