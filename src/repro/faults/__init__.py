"""Fault injection & resilience: chaos-testing the chunk-commit pipeline.

``plan`` describes what to inject (declarative, immutable), ``injector``
applies it deterministically to message legs, and ``chaos`` (imported
lazily — it depends on :mod:`repro.system`) runs whole campaigns and
checks the SC oracle still holds.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import (
    KNOWN_FAULTS,
    FaultKind,
    FaultPlan,
    FaultPoint,
    FaultSpec,
)

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "FaultKind",
    "FaultPlan",
    "FaultPoint",
    "FaultSpec",
    "KNOWN_FAULTS",
]
