#!/usr/bin/env python3
"""Explore the signature design space (paper Section 6).

The paper notes "there is a large unexplored design space of signature
size and encoding."  This example walks a slice of it with the sweep
library: signature size versus squash rate, and chunk size versus
squash rate at a fixed signature — quantifying how superset encoding
interacts with chunk length (the effect behind Figure 10).

Run:  python examples/signature_design_space.py [instructions_per_thread]
"""

import sys

from repro.harness.metrics import squashed_instruction_pct, total_traffic
from repro.harness.sweeps import sweep_parameter

APPS = ["barnes", "ocean", "radix"]


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    print("== squashed instructions (%) vs signature size ==")
    by_size = sweep_parameter(
        parameter_name="sig_bits",
        values=[512, 1024, 2048, 4096],
        apply=lambda cfg, v: cfg.with_signature(size_bits=v),
        metric=squashed_instruction_pct,
        apps=APPS,
        instructions=instructions,
        metric_name="squashed%",
    )
    print(by_size.render())
    print()

    print("== squashed instructions (%) vs chunk size (2 Kbit signature) ==")
    by_chunk = sweep_parameter(
        parameter_name="chunk_size",
        values=[500, 1000, 2000, 4000],
        apply=lambda cfg, v: cfg.with_bulksc(chunk_size_instructions=v),
        metric=squashed_instruction_pct,
        apps=APPS,
        instructions=instructions,
        metric_name="squashed%",
    )
    print(by_chunk.render())
    print()

    print("== total network traffic (bytes) vs signature size ==")
    traffic = sweep_parameter(
        parameter_name="sig_bits",
        values=[512, 2048],
        apply=lambda cfg, v: cfg.with_signature(size_bits=v),
        metric=total_traffic,
        apps=APPS,
        instructions=instructions,
        metric_name="bytes",
    )
    print(traffic.render())
    print()
    print(
        "Reading: bigger signatures alias less (fewer squashes) at higher\n"
        "hardware cost; longer chunks put more addresses into each signature,\n"
        "re-creating the aliasing a bigger signature removed — the paper's\n"
        "Table 2 point (2 Kbit, 1000-instruction chunks) balances the two."
    )


if __name__ == "__main__":
    main()
