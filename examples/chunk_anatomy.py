#!/usr/bin/env python3
"""Anatomy of BulkSC under contention: squashes and forward progress.

Two experiments on hand-built programs:

1. **Lock ping-pong** (paper Figure 6): several processors speculate
   through the same critical section inside their chunks; the first
   commit wins and squashes the rest, who replay and find the lock held.
   The counter still ends exactly right — SC from bulk enforcement.

2. **Pathological conflict loop** (paper Section 3.3): every processor
   hammers the same cache line, forcing repeated squashes.  Watch the
   chunking policy shrink chunks exponentially and, if that is not
   enough, fall back to pre-arbitration — the two forward-progress
   measures of the paper.

Run:  python examples/chunk_anatomy.py
"""

from repro.cpu.isa import Compute, Load, Store
from repro.cpu.thread import ThreadProgram
from repro.memory.address import AddressMap, AddressSpace
from repro.params import bsc_dypvt
from repro.system import Machine, run_workload
from repro.tools import ChunkTracer
from repro.verify.sc_checker import check_sequential_consistency
from repro.workloads import lock_contention_workload


def lock_ping_pong() -> None:
    print("== 1. lock ping-pong (Figure 6 semantics) ==")
    config = bsc_dypvt()
    workload = lock_contention_workload(
        config, increments_per_thread=6, think_time=20
    )
    result = run_workload(config, workload.programs, workload.address_space)
    counter = workload.metadata["counter_addrs"][0]
    squashes = sum(result.stat(f"proc{p}.chunk_squashes") for p in range(8))
    spins = sum(result.stat(f"proc{p}.lock_spin_blocks") for p in range(8))
    check = check_sequential_consistency(result.history)
    print(f"  final counter        : {result.memory.peek(counter)} "
          f"(expected {workload.metadata['expected_total']})")
    print(f"  chunk squashes       : {squashes:.0f} (losers of commit races)")
    print(f"  in-chunk lock spins  : {spins:.0f} (woken by the releaser's commit)")
    print(f"  SC witness           : {'valid' if check.ok else check.reason}")
    print()


def conflict_storm() -> None:
    print("== 2. conflict storm (forward progress, Section 3.3) ==")
    config = bsc_dypvt().with_bulksc(
        chunk_size_instructions=200, prearbitrate_after_squashes=3
    )
    space = AddressSpace(
        AddressMap(config.memory.words_per_line, config.num_directories)
    )
    space.allocate("hot", 64)
    programs = []
    for proc in range(4):
        ops = [Compute(3 + proc)]
        for i in range(40):
            ops.append(Load(f"r{i}", 0))
            ops.append(Store(0, proc * 100 + i))
            ops.append(Compute(5))
        programs.append(ThreadProgram(ops, name=f"hammer{proc}"))
    machine = Machine(config, programs, space)
    tracer = ChunkTracer.attach(machine)
    result = machine.run()
    check = check_sequential_consistency(result.history)
    print(f"  total cycles         : {result.cycles:.0f}")
    for driver in machine.drivers[:4]:
        print(
            f"  proc {driver.proc}: commits={driver.chunk_commits:3d} "
            f"squashes={driver.chunk_squashes:3d} "
            f"shrinks={driver.policy.shrinks:2d} "
            f"pre-arbitrations={driver.policy.prearbitrations}"
        )
    print(f"  SC witness           : {'valid' if check.ok else check.reason}")
    print("  (exponential shrink makes small chunks slip between conflicts;")
    print("   pre-arbitration guarantees the stragglers commit)")
    print()
    print("  first chunk transitions (ChunkTracer):")
    for line in tracer.render(limit=12).splitlines():
        print("   ", line)


def main() -> None:
    lock_ping_pong()
    conflict_storm()


if __name__ == "__main__":
    main()
