#!/usr/bin/env python3
"""Litmus demo: watch RC violate SC and BulkSC enforce it.

Runs the classic store-buffering (Dekker) litmus test many times under
Release Consistency and under BulkSC.  Under RC the forbidden outcome
(r1 == 0 and r2 == 0) shows up — store buffers delay visibility — and
the SC witness checker pinpoints the violation.  Under BulkSC the
outcome never occurs and every recorded history is a valid SC witness,
even though chunks reorder memory operations internally.

Run:  python examples/litmus_demo.py
"""

from repro.cpu.isa import Compute
from repro.cpu.thread import ThreadProgram
from repro.memory.address import AddressMap, AddressSpace
from repro.params import bsc_dypvt, rc_config
from repro.system import run_workload
from repro.verify.litmus import all_litmus_tests
from repro.verify.sc_checker import check_sequential_consistency

STAGGERS = [(1, 1), (1, 60), (60, 1), (200, 7), (7, 200)]
SEEDS = range(4)


def run_once(test, config, stagger):
    space = AddressSpace(
        AddressMap(config.memory.words_per_line, config.num_directories)
    )
    addrs = {
        var: space.allocate(var, config.memory.words_per_line).start_word
        for var in test.variables
    }
    programs = [
        ThreadProgram([Compute(stagger[i % len(stagger)])] + ops, name=f"t{i}")
        for i, ops in enumerate(test.build(addrs))
    ]
    result = run_workload(config, programs, space)
    return test.forbidden(result.registers), check_sequential_consistency(
        result.history
    )


def main() -> None:
    print("litmus     model     forbidden-outcomes   SC-witness-failures")
    print("-" * 64)
    first_violation = None
    for test in all_litmus_tests():
        for label, factory in (("RC", rc_config), ("BulkSC", bsc_dypvt)):
            forbidden = failures = runs = 0
            for seed in SEEDS:
                for stagger in STAGGERS:
                    runs += 1
                    bad, check = run_once(test, factory(seed=seed), stagger)
                    forbidden += bad
                    if not check.ok:
                        failures += 1
                        if first_violation is None and label == "RC":
                            first_violation = (test.name, check)
            print(
                f"{test.name:8s}   {label:7s}   {forbidden:3d} / {runs:<3d}"
                f"              {failures:3d} / {runs}"
            )
    if first_violation is not None:
        name, check = first_violation
        print(f"\nExample RC violation caught by the checker on {name}:")
        print(f"  {check.reason}")
        print(f"  offending event: {check.offending_event}")
    print(
        "\nBulkSC rows must be all-zero: chunks commit atomically and in a"
        "\nglobal order, so every execution is sequentially consistent."
    )


if __name__ == "__main__":
    main()
