#!/usr/bin/env python3
"""Quickstart: run one workload under RC and BulkSC and compare.

Builds the synthetic stand-in for SPLASH-2 `barnes`, executes it on the
paper's 8-core machine under Release Consistency and under BulkSC with
the dynamically-private data optimization (BSCdypvt), and prints the
headline comparison: BulkSC delivers SC at RC-like performance.

Run:  python examples/quickstart.py [app] [instructions_per_thread]
"""

import sys

from repro import bsc_dypvt, rc_config, run_workload
from repro.harness.runner import ALL_APPS, build_app_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    if app not in ALL_APPS:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(ALL_APPS)}")

    print(f"== {app}: {instructions} instructions/thread on 8 cores ==\n")

    results = {}
    for label, factory in (("RC", rc_config), ("BSCdypvt", bsc_dypvt)):
        config = factory()
        workload = build_app_workload(app, config, instructions, seed=0)
        results[label] = run_workload(
            config, workload.programs, workload.address_space, record_history=False
        )
        print(f"{label:9s} finished in {results[label].cycles:10.0f} cycles")

    rc, bulk = results["RC"], results["BSCdypvt"]
    print(f"\nBulkSC speedup over RC: {rc.cycles / bulk.cycles:.3f}")
    print("(the paper's claim: BulkSC provides SC at RC-like performance)\n")

    commits = bulk.stat("commit.visible")
    empty_w = bulk.stat("commit.empty_w_commits")
    squashes = sum(bulk.stat(f"proc{p}.chunk_squashes") for p in range(8))
    squashed_instr = sum(
        bulk.stat(f"proc{p}.squashed_instructions") for p in range(8)
    )
    print("BulkSC internals:")
    print(f"  chunk commits            {commits:8.0f}")
    print(f"  empty-W commits          {empty_w:8.0f} "
          f"({100 * empty_w / max(1, commits):.0f}% — private-data filtering)")
    print(f"  chunk squashes           {squashes:8.0f}")
    print(f"  squashed instructions    {squashed_instr:8.0f} "
          f"({100 * squashed_instr / max(1, bulk.total_instructions):.1f}% of work)")
    print(f"  R signatures transferred {bulk.stat('commit.r_signatures_sent'):8.0f} "
          "(RSig optimization)")

    rc_bytes = sum(rc.traffic_bytes.values())
    bulk_bytes = sum(bulk.traffic_bytes.values())
    print(f"\nNetwork traffic: RC {rc_bytes} bytes, BulkSC {bulk_bytes} bytes "
          f"(+{100 * (bulk_bytes - rc_bytes) / max(1, rc_bytes):.0f}%)")


if __name__ == "__main__":
    main()
