#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and write EXPERIMENTS.md.

This is the full reproduction driver: it sweeps all 13 applications over
all 7 configurations (Table 2), regenerates Figures 9/10/11 and Tables
3/4, prints them, and records the paper-vs-measured comparison in
EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py [instructions_per_thread]
      (default 20000; the paper's shapes are stable from ~10k up)
"""

import sys
import time

from repro.harness.experiments import figure9, figure10, figure11, table3, table4
from repro.harness.metrics import geometric_mean
from repro.harness.runner import ALL_APPS, SweepRunner


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    started = time.time()
    runner = SweepRunner(instructions_per_thread=instructions, seed=0)
    reports = {}

    print(f"Sweeping {len(ALL_APPS)} apps x 7 configs "
          f"({instructions} instructions/thread)...\n")

    for key, make in (
        ("figure9", lambda: figure9(runner)),
        ("table3", lambda: table3(runner)),
        ("table4", lambda: table4(runner)),
        ("figure10", lambda: figure10(instructions=instructions)),
        ("figure11", lambda: figure11(instructions=instructions)),
    ):
        t0 = time.time()
        data, report = make()
        reports[key] = (data, report)
        print(report)
        print(f"[{key} in {time.time() - t0:.0f}s]\n")

    series, __ = reports["figure9"]
    gm = {
        name: geometric_mean([series[name][a] for a in ALL_APPS])
        for name in series
    }
    print("Figure 9 geometric means:", {k: round(v, 3) for k, v in gm.items()})
    print(f"\nTotal wall time: {time.time() - started:.0f}s")
    print("Renderings above correspond to EXPERIMENTS.md; "
          "see that file for the paper-vs-measured discussion.")


if __name__ == "__main__":
    main()
